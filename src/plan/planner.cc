#include "plan/planner.h"

#include <algorithm>
#include <vector>

#include "api/registry.h"
#include "common/string_util.h"

namespace fairhms {
namespace {

/// Seeded, platform-independent tie-break hash (splitmix64 over the seed,
/// FNV-1a over the name). Equal-score candidates rank by this, then by
/// name, so plans are deterministic yet not alphabetically biased.
uint64_t TieBreakHash(uint64_t seed, const std::string& name) {
  uint64_t h = seed + 0x9E3779B97F4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  h ^= h >> 31;
  for (const char c : name) {
    h = (h ^ static_cast<uint64_t>(static_cast<unsigned char>(c))) *
        0x100000001B3ull;
  }
  return h;
}

struct Candidate {
  const AlgorithmInfo* info = nullptr;
  CostModel::Estimate est;
  uint64_t tie = 0;
};

/// Higher happiness first; equal happiness → faster first; then tie hash,
/// then name.
bool BetterQuality(const Candidate& a, const Candidate& b) {
  if (a.est.happiness_ratio != b.est.happiness_ratio) {
    return a.est.happiness_ratio > b.est.happiness_ratio;
  }
  if (a.est.ms != b.est.ms) return a.est.ms < b.est.ms;
  if (a.tie != b.tie) return a.tie < b.tie;
  return a.info->name < b.info->name;
}

/// Faster first; equal time → higher happiness first; then tie hash, name.
bool BetterLatency(const Candidate& a, const Candidate& b) {
  if (a.est.ms != b.est.ms) return a.est.ms < b.est.ms;
  if (a.est.happiness_ratio != b.est.happiness_ratio) {
    return a.est.happiness_ratio > b.est.happiness_ratio;
  }
  if (a.tie != b.tie) return a.tie < b.tie;
  return a.info->name < b.info->name;
}

}  // namespace

StatusOr<Plan> Planner::PlanQuery(const PlanRequest& request,
                                  const CostModel& model,
                                  AlgoParams* params) {
  const AlgorithmRegistry& registry = AlgorithmRegistry::Instance();
  std::vector<Candidate> eligible;
  for (const AlgorithmInfo* info : registry.All()) {
    if (!info->caps.fairness_aware) continue;
    if (info->caps.exact_2d && request.d != 2) continue;
    Candidate c;
    c.info = info;
    c.est = model.Predict(
        info->name,
        CostSignature::Make(request.d, request.n, request.k,
                            request.num_groups, request.bounds_tightness,
                            request.cache_warm));
    c.tie = TieBreakHash(request.seed, info->name);
    eligible.push_back(c);
  }
  if (eligible.empty()) {
    return Status::InvalidArgument(
        "planner: no eligible algorithm registered (known: " +
        registry.NamesForError() + ")");
  }

  std::vector<Candidate> known;
  for (const Candidate& c : eligible) {
    if (c.est.samples > 0) known.push_back(c);
  }

  Plan plan;
  if (known.empty()) {
    // Cold model: capability-driven defaults. IntCov is exact on 2-D
    // data; BiGreedy is the paper's general-d workhorse.
    const Candidate* pick = nullptr;
    for (const Candidate& c : eligible) {
      if (request.d == 2 && c.info->name == "intcov") pick = &c;
    }
    if (pick == nullptr) {
      for (const Candidate& c : eligible) {
        if (c.info->name == "bigreedy") pick = &c;
      }
    }
    if (pick == nullptr) {
      pick = &*std::min_element(eligible.begin(), eligible.end(),
                                BetterQuality);
    }
    plan.algorithm = pick->info->name;
    plan.reason = StrFormat("cold model: default for %d-d data", request.d);
    return plan;
  }

  // Warm model: score the measured candidates.
  const Candidate* pick = nullptr;
  std::string reason;
  const bool has_budget = request.latency_budget_ms > 0.0;
  const bool has_target = request.quality_target > 0.0;
  std::vector<Candidate> in_budget;
  std::vector<Candidate> on_target;
  for (const Candidate& c : known) {
    if (!has_budget || c.est.ms <= request.latency_budget_ms) {
      in_budget.push_back(c);
    }
    if ((!has_budget || c.est.ms <= request.latency_budget_ms) &&
        (!has_target || c.est.happiness_ratio >= request.quality_target)) {
      on_target.push_back(c);
    }
  }
  if (has_target && !on_target.empty()) {
    // Meet the quality target as cheaply as possible.
    pick = &*std::min_element(on_target.begin(), on_target.end(),
                              BetterLatency);
    reason = "fastest candidate meeting the quality target";
  } else if (!in_budget.empty()) {
    // Best quality within the latency budget (or unconstrained).
    pick = &*std::min_element(in_budget.begin(), in_budget.end(),
                              BetterQuality);
    reason = has_budget ? "best quality within the latency budget"
                        : "best measured quality";
    if (has_target) reason += " (quality target unreachable)";
  } else {
    // Budget infeasible for every measured candidate: degrade to the
    // fastest one rather than failing the query.
    pick = &*std::min_element(known.begin(), known.end(), BetterLatency);
    reason = "latency budget infeasible; fastest candidate";
  }

  plan.algorithm = pick->info->name;
  plan.predicted_ms = pick->est.ms;
  plan.predicted_hr = pick->est.happiness_ratio;
  plan.reason = StrFormat("%s (tier %d, %llu samples)", reason.c_str(),
                          pick->est.tier,
                          static_cast<unsigned long long>(pick->est.samples));

  // Parameter choice: when the chosen BiGreedy variant is predicted over
  // budget and the caller didn't pin a net size, trade net resolution for
  // speed. Caller-set keys always win.
  if (params != nullptr && has_budget &&
      pick->est.ms > request.latency_budget_ms &&
      (plan.algorithm == "bigreedy" || plan.algorithm == "bigreedy+") &&
      !params->Has("net_size")) {
    const int64_t net =
        std::max<int64_t>(request.d + 1,
                          4ll * request.k * std::max(request.d, 1));
    params->SetInt("net_size", net);
    plan.params_note = StrFormat("net_size=%lld",
                                 static_cast<long long>(net));
  }
  return plan;
}

}  // namespace fairhms
