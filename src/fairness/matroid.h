// The fairness matroid (paper Sec. 2): independence system
//   I = { S : sum_c max(|S ∩ D_c|, l_c) <= k  and  |S ∩ D_c| <= h_c }.
//
// Every fair size-k set is independent, every independent set extends to a
// fair size-k set, and maximal independent sets have exactly k elements —
// which is what lets matroid-greedy algorithms enforce fairness on the fly.

#ifndef FAIRHMS_FAIRNESS_MATROID_H_
#define FAIRHMS_FAIRNESS_MATROID_H_

#include <vector>

#include "fairness/group_bounds.h"

namespace fairhms {

/// Rank-k matroid oracle over group-count vectors.
class FairnessMatroid {
 public:
  explicit FairnessMatroid(GroupBounds bounds) : bounds_(std::move(bounds)) {}

  const GroupBounds& bounds() const { return bounds_; }
  int rank() const { return bounds_.k; }

  /// Independence test on a count vector.
  bool IsIndependent(const std::vector<int>& counts) const {
    long long needed = 0;
    for (size_t c = 0; c < counts.size(); ++c) {
      if (counts[c] > bounds_.upper[c]) return false;
      needed += std::max(counts[c], bounds_.lower[c]);
    }
    return needed <= bounds_.k;
  }

  /// Whether a set with the given counts can absorb one more element of
  /// `group` and stay independent.
  bool CanAdd(const std::vector<int>& counts, int group) const {
    if (counts[static_cast<size_t>(group)] >=
        bounds_.upper[static_cast<size_t>(group)]) {
      return false;
    }
    long long needed = 0;
    for (size_t c = 0; c < counts.size(); ++c) {
      const int cnt = counts[c] + (static_cast<int>(c) == group ? 1 : 0);
      needed += std::max(cnt, bounds_.lower[c]);
    }
    return needed <= bounds_.k;
  }

 private:
  GroupBounds bounds_;
};

/// Mutable selection state used by greedy loops: tracks the chosen rows and
/// per-group counts against a FairnessMatroid.
class FairSelection {
 public:
  FairSelection(const FairnessMatroid* matroid, const Grouping* grouping)
      : matroid_(matroid),
        grouping_(grouping),
        counts_(static_cast<size_t>(grouping->num_groups), 0) {}

  bool CanAdd(int row) const {
    return matroid_->CanAdd(counts_,
                            grouping_->group_of[static_cast<size_t>(row)]);
  }

  void Add(int row) {
    ++counts_[static_cast<size_t>(
        grouping_->group_of[static_cast<size_t>(row)])];
    rows_.push_back(row);
  }

  /// True when no element of any group could still be added (the selection
  /// is a maximal independent set, i.e. a fair size-k set).
  bool IsMaximal() const {
    for (int c = 0; c < grouping_->num_groups; ++c) {
      if (matroid_->CanAdd(counts_, c)) return false;
    }
    return true;
  }

  int size() const { return static_cast<int>(rows_.size()); }
  const std::vector<int>& rows() const { return rows_; }
  const std::vector<int>& counts() const { return counts_; }

 private:
  const FairnessMatroid* matroid_;
  const Grouping* grouping_;
  std::vector<int> counts_;
  std::vector<int> rows_;
};

}  // namespace fairhms

#endif  // FAIRHMS_FAIRNESS_MATROID_H_
