#include "fairness/group_bounds.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/string_util.h"

namespace fairhms {

StatusOr<GroupBounds> GroupBounds::Explicit(int k, std::vector<int> lower,
                                            std::vector<int> upper) {
  if (lower.size() != upper.size()) {
    return Status::InvalidArgument("lower/upper size mismatch");
  }
  GroupBounds b;
  b.k = k;
  b.lower = std::move(lower);
  b.upper = std::move(upper);
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  long long sum_l = 0;
  long long sum_h = 0;
  for (size_t c = 0; c < b.lower.size(); ++c) {
    if (b.lower[c] < 0 || b.upper[c] < b.lower[c]) {
      return Status::InvalidArgument(
          StrFormat("bad bounds for group %zu: [%d, %d]", c, b.lower[c],
                    b.upper[c]));
    }
    sum_l += b.lower[c];
    sum_h += b.upper[c];
  }
  if (sum_l > k) {
    return Status::InvalidArgument(
        StrFormat("sum of lower bounds %lld exceeds k=%d", sum_l, k));
  }
  if (sum_h < k) {
    return Status::InvalidArgument(
        StrFormat("sum of upper bounds %lld below k=%d", sum_h, k));
  }
  return b;
}

GroupBounds GroupBounds::Proportional(int k,
                                      const std::vector<int>& group_counts,
                                      double alpha) {
  const int c_num = static_cast<int>(group_counts.size());
  const double total = std::max<double>(
      1.0, std::accumulate(group_counts.begin(), group_counts.end(), 0.0));
  // The paper's "at least 1 per group" floor and the k-C+1 cap both assume
  // every group holds tuples. Empty groups — routine once data churns
  // between queries — must contribute exactly 0 on both sides, and only
  // the C' non-empty groups count against the k-C'+1 cap; otherwise the
  // instance is infeasible by construction.
  const int c_nonempty = static_cast<int>(
      std::count_if(group_counts.begin(), group_counts.end(),
                    [](int n) { return n > 0; }));
  GroupBounds b;
  b.k = k;
  for (int c = 0; c < c_num; ++c) {
    if (group_counts[static_cast<size_t>(c)] == 0) {
      b.lower.push_back(0);
      b.upper.push_back(0);
      continue;
    }
    const double share = k * group_counts[static_cast<size_t>(c)] / total;
    int lo = static_cast<int>(std::floor((1.0 - alpha) * share));
    int hi = static_cast<int>(std::ceil((1.0 + alpha) * share));
    lo = std::max(lo, 1);                  // "or at least 1"
    hi = std::min(hi, std::max(1, k - c_nonempty + 1));  // "or at most k-C'+1"
    // The k-C'+1 cap can undercut a dominant group's proportional lower
    // bound (e.g. k=10, C=5, share 0.85); cap lo at hi so the constraint
    // stays self-consistent per group.
    lo = std::min(lo, hi);
    b.lower.push_back(lo);
    b.upper.push_back(hi);
  }
  // Global repair: with many groups the "at least 1" floors plus the k-C+1
  // cap can still make sum(l) > k (or, symmetrically, sum(h) < k). Shave
  // the largest lower bounds / raise the largest group's upper bounds until
  // the constraint is satisfiable; this preserves proportionality as
  // closely as the integer caps allow.
  long long sum_l = std::accumulate(b.lower.begin(), b.lower.end(), 0LL);
  while (sum_l > k) {
    int target = 0;
    for (int c = 1; c < c_num; ++c) {
      if (b.lower[static_cast<size_t>(c)] >
          b.lower[static_cast<size_t>(target)]) {
        target = c;
      }
    }
    --b.lower[static_cast<size_t>(target)];
    --sum_l;
  }
  long long sum_h = std::accumulate(b.upper.begin(), b.upper.end(), 0LL);
  while (sum_h < k) {
    int target = -1;
    for (int c = 0; c < c_num; ++c) {
      // Only raise where the group actually has more tuples to give.
      if (b.upper[static_cast<size_t>(c)] <
              group_counts[static_cast<size_t>(c)] &&
          (target < 0 || group_counts[static_cast<size_t>(c)] >
                             group_counts[static_cast<size_t>(target)])) {
        target = c;
      }
    }
    if (target < 0) break;  // Fewer tuples than k overall; Validate catches.
    ++b.upper[static_cast<size_t>(target)];
    ++sum_h;
  }
  return b;
}

StatusOr<GroupBounds> GroupBounds::Balanced(int k, int num_groups,
                                            double alpha) {
  if (k < 1) {
    return Status::InvalidArgument(StrFormat("k must be >= 1, got %d", k));
  }
  if (num_groups < 1) {
    return Status::InvalidArgument(
        StrFormat("num_groups must be >= 1, got %d", num_groups));
  }
  if (alpha < 0.0) {
    return Status::InvalidArgument(
        StrFormat("alpha must be >= 0, got %g", alpha));
  }
  GroupBounds b;
  b.k = k;
  const double share = static_cast<double>(k) / num_groups;
  int lo = static_cast<int>(std::floor((1.0 - alpha) * share));
  int hi = static_cast<int>(std::ceil((1.0 + alpha) * share));
  lo = std::max(0, lo);
  // No single group may exceed k; hi >= ceil(k/C) still holds (alpha >= 0),
  // so the upper bounds always sum to at least k.
  hi = std::min(hi, k);
  hi = std::max(hi, lo);
  b.lower.assign(static_cast<size_t>(num_groups), lo);
  b.upper.assign(static_cast<size_t>(num_groups), hi);
  return b;
}

namespace {

/// "group 2 ('F')" when a name is known, "group 2" otherwise.
std::string GroupLabel(size_t c, const std::vector<std::string>* names) {
  if (names != nullptr && c < names->size()) {
    return StrFormat("group %zu ('%s')", c, (*names)[c].c_str());
  }
  return StrFormat("group %zu", c);
}

}  // namespace

Status GroupBounds::Validate(const std::vector<int>& group_counts,
                             const std::vector<std::string>* names) const {
  if (group_counts.size() != lower.size()) {
    return Status::InvalidArgument("group count size mismatch");
  }
  FAIRHMS_ASSIGN_OR_RETURN(GroupBounds checked, Explicit(k, lower, upper));
  (void)checked;
  constexpr size_t kMaxListed = 16;
  std::vector<std::string> offenders;
  long long reachable = 0;
  for (size_t c = 0; c < lower.size(); ++c) {
    if (lower[c] > group_counts[c]) {
      if (offenders.size() < kMaxListed) {
        offenders.push_back(StrFormat(
            "%s: bounds [%d, %d] but only %d candidates",
            GroupLabel(c, names).c_str(), lower[c], upper[c],
            group_counts[c]));
      }
    }
    reachable += std::min(upper[c], group_counts[c]);
  }
  if (!offenders.empty()) {
    return Status::Infeasible(StrFormat(
        "lower bounds exceed the available tuples in %s%s",
        Join(offenders, "; ").c_str(),
        offenders.size() == kMaxListed ? "; ..." : ""));
  }
  if (reachable < k) {
    // Name the binding groups: everywhere availability (not the declared
    // upper bound) is the limit, the data — not the constraint — ran dry.
    std::vector<std::string> binding;
    for (size_t c = 0; c < lower.size() && binding.size() < kMaxListed; ++c) {
      if (group_counts[c] < upper[c]) {
        binding.push_back(StrFormat(
            "%s: bounds [%d, %d] but only %d candidates",
            GroupLabel(c, names).c_str(), lower[c], upper[c],
            group_counts[c]));
      }
    }
    return Status::Infeasible(StrFormat(
        "at most %lld tuples selectable but k=%d (%s%s)", reachable, k,
        Join(binding, "; ").c_str(),
        binding.size() == kMaxListed ? "; ..." : ""));
  }
  return Status::OK();
}

std::vector<int> SolutionGroupCounts(const std::vector<int>& solution,
                                     const Grouping& grouping) {
  std::vector<int> counts(static_cast<size_t>(grouping.num_groups), 0);
  for (int idx : solution) {
    assert(idx >= 0 && static_cast<size_t>(idx) < grouping.group_of.size());
    ++counts[static_cast<size_t>(grouping.group_of[static_cast<size_t>(idx)])];
  }
  return counts;
}

int CountViolations(const std::vector<int>& solution, const Grouping& grouping,
                    const GroupBounds& bounds) {
  const std::vector<int> counts = SolutionGroupCounts(solution, grouping);
  int err = 0;
  for (size_t c = 0; c < counts.size(); ++c) {
    const int over = counts[c] - bounds.upper[c];
    const int under = bounds.lower[c] - counts[c];
    err += std::max({over, under, 0});
  }
  return err;
}

StatusOr<std::vector<int>> AllocateQuotas(const GroupBounds& bounds,
                                          const std::vector<double>& weights,
                                          const std::vector<int>& caps) {
  const size_t c_num = bounds.lower.size();
  if (weights.size() != c_num || caps.size() != c_num) {
    return Status::InvalidArgument("weights/caps size mismatch");
  }
  std::vector<int> quota(bounds.lower);
  std::vector<int> limit(c_num);
  long long assigned = 0;
  for (size_t c = 0; c < c_num; ++c) {
    limit[c] = std::min(bounds.upper[c], caps[c]);
    if (quota[c] > limit[c]) {
      return Status::Infeasible(
          StrFormat("group %zu: lower bound %d exceeds available %d", c,
                    quota[c], limit[c]));
    }
    assigned += quota[c];
  }
  long long remaining = bounds.k - assigned;
  if (remaining < 0) return Status::Infeasible("lower bounds exceed k");

  // Highest-averages (D'Hondt) distribution of the remaining slots: each
  // slot goes to the group with headroom maximizing weight / (extra + 1),
  // which apportions extras proportionally to the weights. Deterministic
  // tie-break by group id.
  std::vector<int> extra(c_num, 0);
  while (remaining > 0) {
    int best = -1;
    double best_key = -1.0;
    for (size_t c = 0; c < c_num; ++c) {
      if (quota[c] >= limit[c]) continue;
      const double key = std::max(weights[c], 1e-12) / (extra[c] + 1);
      if (key > best_key) {
        best_key = key;
        best = static_cast<int>(c);
      }
    }
    if (best < 0) {
      return Status::Infeasible("upper bounds/caps too tight for k");
    }
    ++quota[static_cast<size_t>(best)];
    ++extra[static_cast<size_t>(best)];
    --remaining;
  }
  return quota;
}

}  // namespace fairhms
