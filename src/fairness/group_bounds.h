// Group fairness constraint: per-group lower/upper bounds on how many tuples
// a size-k solution may take from each group.

#ifndef FAIRHMS_FAIRNESS_GROUP_BOUNDS_H_
#define FAIRHMS_FAIRNESS_GROUP_BOUNDS_H_

#include <vector>

#include "common/statusor.h"
#include "data/grouping.h"

namespace fairhms {

/// The constraint "l_c <= |S ∩ D_c| <= h_c for all c, |S| = k".
struct GroupBounds {
  int k = 0;
  std::vector<int> lower;
  std::vector<int> upper;

  int num_groups() const { return static_cast<int>(lower.size()); }

  /// Builds explicit bounds after validation (sizes match, 0 <= l <= h,
  /// sum(l) <= k <= sum(h)).
  static StatusOr<GroupBounds> Explicit(int k, std::vector<int> lower,
                                        std::vector<int> upper);

  /// Proportional representation (paper Sec. 5.1): for each group,
  ///   l_c = max(1, floor((1-alpha) * k * |D_c| / |D|)),
  ///   h_c = min(k - C + 1, ceil((1+alpha) * k * |D_c| / |D|)).
  static GroupBounds Proportional(int k, const std::vector<int>& group_counts,
                                  double alpha);

  /// Balanced representation:
  ///   l_c = floor((1-alpha) * k / C),  h_c = min(ceil((1+alpha) * k / C), k).
  /// Fails with InvalidArgument on k < 1, num_groups < 1 or alpha < 0.
  static StatusOr<GroupBounds> Balanced(int k, int num_groups, double alpha);

  /// Checks internal consistency and feasibility against the group sizes
  /// (`group_counts[c]` = number of available tuples in group c). On
  /// infeasibility the message names *every* offending group — id, display
  /// name when `names` is given, its [lo, hi] and the available count — so
  /// a failed line in a `--queries` batch stream is diagnosable on its own.
  Status Validate(const std::vector<int>& group_counts,
                  const std::vector<std::string>* names = nullptr) const;
};

/// Number of fairness violations of a solution (paper Eq. 3):
///   err(S) = sum_c max(|S∩D_c| - h_c, l_c - |S∩D_c|, 0).
int CountViolations(const std::vector<int>& solution, const Grouping& grouping,
                    const GroupBounds& bounds);

/// Per-group member counts of a solution.
std::vector<int> SolutionGroupCounts(const std::vector<int>& solution,
                                     const Grouping& grouping);

/// Splits the budget k into per-group quotas k_c with l_c <= k_c <=
/// min(h_c, cap_c), sum = k. Quotas start at the lower bounds and the rest
/// is distributed proportionally to `weights` (largest remainder). Fails
/// when no such quota vector exists. Used by the G-* adapted baselines.
StatusOr<std::vector<int>> AllocateQuotas(const GroupBounds& bounds,
                                          const std::vector<double>& weights,
                                          const std::vector<int>& caps);

}  // namespace fairhms

#endif  // FAIRHMS_FAIRNESS_GROUP_BOUNDS_H_
