// DatasetCatalog: routed queries are bit-identical to standalone sessions
// (with and without a global budget forcing whole-cache evictions), the
// per-session byte accounting agrees with the process-wide arbiter total,
// a snapshot round trip through Save/Load preserves solve results for
// every registered algorithm plus the maintained skyline state, and
// insert-routing provenance survives a restore even for combinations whose
// rows were all erased.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/catalog.h"
#include "api/session.h"
#include "api/solver.h"
#include "common/random.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/incremental.h"

namespace fairhms {
namespace {

// Spelled out as in session_update_test.cc; RegistryCoversUpdateSuite
// there guards against drift.
const std::string kAlgorithms[] = {
    "bigreedy", "bigreedy+", "dmm",    "fair_greedy", "g_dmm",  "g_greedy",
    "g_hs",     "g_sphere",  "hs",     "intcov",      "rdp_greedy", "sphere"};

struct Instance {
  Dataset data{1};
  Grouping grouping;
};

Instance MakeInstance(uint64_t seed, size_t n = 150, int dim = 3,
                      int groups = 3) {
  Instance inst;
  Rng rng(seed);
  inst.data = GenIndependent(n, dim, &rng).NormalizedMinMax();
  inst.grouping = GroupBySumRank(inst.data, groups);
  return inst;
}

SolverRequest MakeRequest(const std::string& algo, int k,
                          const Instance& inst) {
  SolverRequest request;
  request.algorithm = algo;
  request.bounds = GroupBounds::Proportional(
      k, inst.grouping.LiveCounts(inst.data), 0.2);
  request.threads = 1;
  return request;
}

void ExpectResultsEqual(const SolverResult& a, const SolverResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.solution.rows, b.solution.rows) << label;
  EXPECT_EQ(a.solution.mhr, b.solution.mhr) << label;
  EXPECT_EQ(a.group_counts, b.group_counts) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
}

/// Interleaves queries across three catalog datasets and checks every
/// response against a standalone session pinned to an identical copy.
/// With `budget_bytes` small enough, every rebalance evicts the cold
/// sessions — the point is that results stay identical and no query fails.
void RunInterleavedCheck(uint64_t budget_bytes, uint64_t* evictions_out) {
  const std::vector<std::string> names = {"alpha", "beta", "gamma"};
  std::vector<Instance> standalone_data;
  std::vector<SolverSession> standalone;
  DatasetCatalog catalog(DatasetCatalog::Options{budget_bytes});
  for (size_t i = 0; i < names.size(); ++i) {
    // Distinct seeds and group counts, so a routing mix-up cannot hide.
    Instance inst = MakeInstance(100 + i, 120 + 30 * i, 3,
                                 2 + static_cast<int>(i));
    ASSERT_TRUE(catalog
                    .Register(names[i], inst.data, inst.grouping)
                    .ok());
    standalone_data.push_back(std::move(inst));
  }
  for (Instance& inst : standalone_data) {
    auto session = SolverSession::CreateDynamic(&inst.data, &inst.grouping);
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    standalone.push_back(std::move(*session));
  }

  const std::vector<std::string> algos = {"intcov", "g_greedy", "hs"};
  for (int round = 0; round < 2; ++round) {
    for (const std::string& algo : algos) {
      for (int k : {5, 8}) {
        for (size_t i = 0; i < names.size(); ++i) {
          const SolverRequest request =
              MakeRequest(algo, k, standalone_data[i]);
          auto routed = catalog.Solve(names[i], request);
          ASSERT_TRUE(routed.ok())
              << names[i] << "/" << algo << ": " << routed.status().ToString();
          auto direct = standalone[i].Solve(request);
          ASSERT_TRUE(direct.ok()) << direct.status().ToString();
          ExpectResultsEqual(*routed, *direct, names[i] + "/" + algo);
        }
      }
    }
  }

  // The per-session byte reports and the arbiter's global charge are two
  // views of one ledger; they must agree exactly.
  uint64_t session_bytes = 0;
  for (const std::string& name : catalog.List()) {
    auto session = catalog.Session(name);
    ASSERT_TRUE(session.ok());
    session_bytes += (*session)->cache_stats().TotalBytes();
  }
  EXPECT_EQ(session_bytes, catalog.arbiter()->total_bytes());
  *evictions_out = catalog.arbiter()->evictions();
}

TEST(CatalogTest, InterleavedRoutedQueriesMatchStandaloneSessions) {
  uint64_t evictions = 0;
  RunInterleavedCheck(/*budget_bytes=*/0, &evictions);
  EXPECT_EQ(evictions, 0u);  // Unlimited budget never evicts.
}

TEST(CatalogTest, GlobalBudgetForcesEvictionNotFailure) {
  uint64_t evictions = 0;
  // 1 KiB holds no working set: every rebalance must evict the cold
  // sessions, and every query above still has to succeed bit-identically
  // (eviction degrades to recomputation, never to failure).
  RunInterleavedCheck(/*budget_bytes=*/1024, &evictions);
  EXPECT_GT(evictions, 0u);
}

TEST(CatalogTest, SaveLoadPreservesSolveResultsForEveryAlgorithm) {
  // Mutate through the catalog first, so the snapshot carries tombstones,
  // appended rows and an incrementally maintained skyline.
  Instance inst = MakeInstance(/*seed=*/303, /*n=*/400, /*dim=*/3);
  DatasetCatalog live;
  ASSERT_TRUE(live.Register("d", inst.data, inst.grouping).ok());
  auto session = live.Session("d");
  ASSERT_TRUE(session.ok());
  Rng rng(404);
  for (int i = 0; i < 15; ++i) {
    const int g = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>((*session)->grouping().num_groups)));
    ASSERT_TRUE(
        (*session)
            ->Insert({rng.Uniform(), rng.Uniform(), rng.Uniform()}, {}, g)
            .ok());
  }
  for (int i = 0; i < 10; ++i) {
    const std::vector<int> rows = (*session)->data().LiveRows();
    ASSERT_TRUE((*session)->Erase({rows[rng.UniformInt(rows.size())]}).ok());
  }

  Instance mutated;
  mutated.data = (*session)->data();
  mutated.grouping = (*session)->grouping();
  std::vector<SolverResult> warm;
  for (const std::string& algo : kAlgorithms) {
    auto result = live.Solve("d", MakeRequest(algo, 12, mutated));
    ASSERT_TRUE(result.ok()) << algo << ": " << result.status().ToString();
    warm.push_back(std::move(*result));
  }

  const std::string path =
      ::testing::TempDir() + "fairhms_catalog_roundtrip.snap";
  ASSERT_TRUE(live.Save("d", path).ok());

  DatasetCatalog restored_catalog;
  ASSERT_TRUE(restored_catalog.Load("d", path).ok());
  std::remove(path.c_str());
  std::remove((path + ".plan").c_str());

  for (size_t i = 0; i < warm.size(); ++i) {
    auto restored =
        restored_catalog.Solve("d", MakeRequest(kAlgorithms[i], 12, mutated));
    ASSERT_TRUE(restored.ok())
        << kAlgorithms[i] << ": " << restored.status().ToString();
    ExpectResultsEqual(warm[i], *restored, kAlgorithms[i]);
  }

  // The restored skyline index is the saved one, state for state — no
  // dominance test recomputed it into some other equivalent shape.
  auto restored_session = restored_catalog.Session("d");
  ASSERT_TRUE(restored_session.ok());
  ASSERT_NE((*session)->index(), nullptr);
  ASSERT_NE((*restored_session)->index(), nullptr);
  const SkylineIndexState before = (*session)->index()->SaveState();
  const SkylineIndexState after = (*restored_session)->index()->SaveState();
  EXPECT_EQ(before.global.skyline, after.global.skyline);
  EXPECT_EQ(before.global.dominated, after.global.dominated);
  ASSERT_EQ(before.per_group.size(), after.per_group.size());
  for (size_t g = 0; g < before.per_group.size(); ++g) {
    EXPECT_EQ(before.per_group[g].skyline, after.per_group[g].skyline);
    EXPECT_EQ(before.per_group[g].dominated, after.per_group[g].dominated);
  }
}

TEST(CatalogTest, CostModelSidecarSurvivesSaveLoad) {
  // Save writes the session's cost model next to the snapshot
  // (`<path>.plan`); Load restores it, so a reloaded catalog plans
  // `algorithm: "auto"` queries as well as the one that was saved.
  Instance inst = MakeInstance(/*seed=*/505, /*n=*/200, /*dim=*/3);
  DatasetCatalog live;
  ASSERT_TRUE(live.Register("d", inst.data, inst.grouping).ok());
  ASSERT_TRUE(live.Solve("d", MakeRequest("bigreedy", 8, inst)).ok());
  ASSERT_TRUE(live.Solve("d", MakeRequest("fair_greedy", 8, inst)).ok());
  auto session = live.Session("d");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ((*session)->cost_model()->observations(), 2u);
  const std::string serialized = (*session)->cost_model()->Serialize();

  const std::string path =
      ::testing::TempDir() + "fairhms_catalog_costmodel.snap";
  ASSERT_TRUE(live.Save("d", path).ok());

  DatasetCatalog restored;
  ASSERT_TRUE(restored.Load("d", path).ok());
  auto restored_session = restored.Session("d");
  ASSERT_TRUE(restored_session.ok());
  EXPECT_EQ((*restored_session)->cost_model()->Serialize(), serialized);

  // An "auto" query against the restored catalog plans from measurements,
  // not from the cold defaults (the echo carries a real prediction).
  auto planned = restored.Solve("d", MakeRequest("auto", 8, inst));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_TRUE(planned->plan.planned);
  EXPECT_GE(planned->plan.predicted_ms, 0.0);

  // A missing sidecar is not an error — the session just starts cold.
  std::remove((path + ".plan").c_str());
  DatasetCatalog cold;
  ASSERT_TRUE(cold.Load("d", path).ok());
  auto cold_session = cold.Session("d");
  ASSERT_TRUE(cold_session.ok());
  EXPECT_EQ((*cold_session)->cost_model()->observations(), 0u);
  std::remove(path.c_str());
}

TEST(CatalogTest, EmptiedComboRouteSurvivesRestore) {
  // A combination whose rows were all erased is not derivable from the
  // table; only the serialized combination table can preserve its route.
  Dataset data(3);
  data.AddCategoricalColumn("region", {"north", "south"});
  Rng rng(11);
  for (int i = 0; i < 30; ++i) {
    data.AddRow({rng.Uniform(), rng.Uniform(), rng.Uniform()}, {i % 2});
  }
  Grouping grouping = GroupByCategoricalProduct(data, {"region"}).value();

  DatasetCatalog live;
  ASSERT_TRUE(live.Register("d", data, grouping, {"region"}).ok());
  auto session = live.Session("d");
  ASSERT_TRUE(session.ok());
  const int west = (*session)->mutable_data()->AddCategoricalLabel(0, "west");
  auto row = (*session)->Insert({0.9, 0.1, 0.4}, {west});
  ASSERT_TRUE(row.ok());
  const int west_group = (*session)->grouping().group_of[
      static_cast<size_t>(*row)];
  ASSERT_TRUE((*session)->Erase({*row}).ok());  // Empty the combination.

  const std::string path = ::testing::TempDir() + "fairhms_catalog_combo.snap";
  ASSERT_TRUE(live.Save("d", path).ok());
  DatasetCatalog restored;
  ASSERT_TRUE(restored.Load("d", path).ok());
  std::remove(path.c_str());

  auto restored_session = restored.Session("d");
  ASSERT_TRUE(restored_session.ok());
  EXPECT_EQ((*restored_session)->grouping().num_groups,
            (*session)->grouping().num_groups);
  // The route still resolves to the original group id — a fresh insert
  // with the emptied combination must not open a second group for it.
  auto resolved = (*restored_session)->ResolveInsertGroup({west});
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(*resolved, west_group);
  auto reinserted = (*restored_session)->Insert({0.8, 0.2, 0.5}, {west});
  ASSERT_TRUE(reinserted.ok());
  EXPECT_EQ((*restored_session)->grouping().group_of[
                static_cast<size_t>(*reinserted)],
            west_group);
  EXPECT_EQ((*restored_session)->grouping().num_groups,
            (*session)->grouping().num_groups);
}

TEST(CatalogTest, DropReleasesNameAndCacheCharge) {
  Instance a = MakeInstance(1), b = MakeInstance(2);
  DatasetCatalog catalog;
  ASSERT_TRUE(catalog.Register("a", a.data, a.grouping).ok());
  ASSERT_TRUE(catalog.Register("b", b.data, b.grouping).ok());
  ASSERT_TRUE(catalog.Solve("a", MakeRequest("intcov", 6, a)).ok());
  ASSERT_TRUE(catalog.Solve("b", MakeRequest("intcov", 6, b)).ok());
  EXPECT_GT(catalog.arbiter()->total_bytes(), 0u);

  const uint64_t version_before = catalog.version();
  ASSERT_TRUE(catalog.Drop("a").ok());
  EXPECT_EQ(catalog.version(), version_before + 1);
  EXPECT_EQ(catalog.List(), std::vector<std::string>{"b"});
  EXPECT_EQ(catalog.Solve("a", MakeRequest("intcov", 6, a)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.Drop("a").code(), StatusCode::kNotFound);

  // The dropped session's bytes left the global ledger with it.
  auto remaining = catalog.Session("b");
  ASSERT_TRUE(remaining.ok());
  EXPECT_EQ((*remaining)->cache_stats().TotalBytes(),
            catalog.arbiter()->total_bytes());

  // The name is reusable.
  ASSERT_TRUE(catalog.Register("a", a.data, a.grouping).ok());
}

}  // namespace
}  // namespace fairhms
