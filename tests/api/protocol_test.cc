// Wire-protocol round-trip tests: a scripted request battery (every op,
// every error class) served through a fresh ProtocolService and compared
// byte-for-byte against golden files under golden/, once per envelope
// version. Timing-valued fields (and the two solve-quality doubles, which
// may differ in the last ulp across compilers) are normalized to `T`
// before the comparison; everything else — member order, separators,
// ids, error codes and messages, catalog versions, seq numbers — must
// match exactly.
//
// Regenerate the goldens after an intentional protocol change with
//   FAIRHMS_UPDATE_GOLDEN=1 ./fairhms_api_tests --gtest_filter='ProtocolGolden*'
// and review the diff like any other code change.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/catalog.h"
#include "api/protocol.h"
#include "api/service.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "data/grouping.h"

#ifndef FAIRHMS_TEST_SRCDIR
#error "FAIRHMS_TEST_SRCDIR must point at tests/api (set in CMakeLists)"
#endif

namespace fairhms {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(FAIRHMS_TEST_SRCDIR) + "/golden/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Replaces the numeric value of every volatile field with `T`: wall-clock
/// timings plus the two %.17g solve-quality doubles (deterministic within
/// one binary but not across compilers).
std::string Normalize(std::string s) {
  static const char* const kKeys[] = {
      "solve_ms",     "total_ms",  "uptime_ms",
      "qps",          "p50_ms",    "p99_ms",
      "happiness_ratio", "algo_mhr_estimate", "predicted_ms",
      "predicted_hr", "actual_ms"};
  for (const char* key : kKeys) {
    const std::string needle = std::string("\"") + key + "\": ";
    size_t pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      const size_t start = pos + needle.size();
      size_t end = start;
      while (end < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[end])) ||
              std::strchr(".eE+-", s[end]) != nullptr)) {
        ++end;
      }
      s.replace(start, end - start, "T");
      pos = start + 1;
    }
  }
  // String-valued fields that vary with the host CPU / environment rather
  // than the build: the kernel layer's dispatch level and mode.
  static const char* const kStringKeys[] = {"simd_level", "simd_mode"};
  for (const char* key : kStringKeys) {
    const std::string needle = std::string("\"") + key + "\": \"";
    size_t pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      const size_t start = pos + needle.size();
      const size_t end = s.find('"', start);
      if (end == std::string::npos) break;
      s.replace(start, end - start, "T");
      pos = start + 1;
    }
  }
  return s;
}

/// Serves golden/requests.jsonl through a freshly bootstrapped service
/// (fixed seeds, one "default" dataset) under the given envelope version
/// and returns the normalized response lines.
std::vector<std::string> ServeBattery(int version, bool normalize = true) {
  DatasetCatalog catalog;
  Rng rng(1234);
  Dataset data = GenIndependent(60, 3, &rng).NormalizedMinMax();
  Grouping grouping = GroupBySumRank(data, 2);
  EXPECT_TRUE(
      catalog.Register("default", std::move(data), std::move(grouping)).ok());
  ServiceOptions opts;
  opts.default_seed = 7;
  opts.default_threads = 1;
  opts.envelope.version = version;
  opts.envelope.emit_seq = version >= 1;
  ProtocolService service(&catalog, opts);

  std::vector<std::string> responses;
  uint64_t line_no = 0;
  for (const std::string& line : ReadLines(GoldenPath("requests.jsonl"))) {
    ++line_no;
    std::string response = service.HandleLine(line, line_no);
    responses.push_back(normalize ? Normalize(std::move(response))
                                  : std::move(response));
  }
  // The battery's save op writes next to the test binary; drop the file
  // (and its cost-model sidecar) so reruns start clean (the bytes are
  // covered by snapshot tests).
  std::remove("protocol_golden_tiny.snap");
  std::remove("protocol_golden_tiny.snap.plan");
  return responses;
}

void CheckGolden(const std::string& name,
                 const std::vector<std::string>& lines) {
  std::string actual;
  for (const std::string& line : lines) actual += line + "\n";
  const std::string path = GoldenPath(name);
  if (std::getenv("FAIRHMS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "cannot open " << path
                         << " (regenerate with FAIRHMS_UPDATE_GOLDEN=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual) << "golden mismatch for " << name;
}

TEST(ProtocolGoldenTest, LegacyEnvelopeBattery) {
  CheckGolden("responses_v0.jsonl", ServeBattery(0));
}

TEST(ProtocolGoldenTest, VersionedEnvelopeBattery) {
  CheckGolden("responses_v1.jsonl", ServeBattery(1));
}

TEST(ProtocolGoldenTest, VersionedEnvelopeOnlyChangesTheEnvelope) {
  const std::vector<std::string> v0 = ServeBattery(0);
  const std::vector<std::string> v1 = ServeBattery(1);
  ASSERT_EQ(v0.size(), v1.size());
  for (size_t i = 0; i < v0.size(); ++i) {
    // Strip the version-1 additions: the protocol_version stamp and the
    // seq number.
    std::string stripped = v1[i];
    const std::string version_tag =
        StrFormat("\"protocol_version\": %d, ", kProtocolVersion);
    size_t pos = stripped.find(version_tag);
    ASSERT_NE(pos, std::string::npos) << stripped;
    stripped.erase(pos, version_tag.size());
    pos = stripped.find("\"seq\": ");
    if (pos != std::string::npos) {
      size_t end = pos + 7;
      while (end < stripped.size() &&
             std::isdigit(static_cast<unsigned char>(stripped[end]))) {
        ++end;
      }
      ASSERT_EQ(stripped.substr(end, 2), ", ") << stripped;
      stripped.erase(pos, end + 2 - pos);
    }
    if (v0[i].find("\"ok\": true") != std::string::npos) {
      // Success payloads must be byte-identical under both envelopes.
      EXPECT_EQ(stripped, v0[i]) << "line " << i + 1;
    } else {
      // Error lines: the v1 structured error must carry the same code and
      // message that the v0 free-text rendering concatenates.
      const std::string prefix = "\"error\": \"";
      pos = v0[i].find(prefix);
      ASSERT_NE(pos, std::string::npos) << v0[i];
      const size_t start = pos + prefix.size();
      const size_t end = v0[i].rfind("\"}");
      ASSERT_NE(end, std::string::npos);
      const std::string legacy = v0[i].substr(start, end - start);
      const size_t sep = legacy.find(": ");
      ASSERT_NE(sep, std::string::npos) << legacy;
      const std::string structured = "\"error\": {\"code\": \"" +
                                     legacy.substr(0, sep) +
                                     "\", \"message\": \"" +
                                     legacy.substr(sep + 2) + "\"}}";
      EXPECT_NE(v1[i].find(structured), std::string::npos)
          << "line " << i + 1 << ": " << v1[i] << " vs legacy " << legacy;
    }
  }
}

TEST(ProtocolGoldenTest, VersionedResponsesAreValidJson) {
  for (const std::string& line : ServeBattery(1, /*normalize=*/false)) {
    auto parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    ASSERT_TRUE(parsed->is_object()) << line;
    const JsonValue* version = parsed->Find("protocol_version");
    ASSERT_NE(version, nullptr) << line;
    EXPECT_EQ(*version->AsInt64(), kProtocolVersion);
    ASSERT_NE(parsed->Find("id"), nullptr) << line;
    const JsonValue* ok = parsed->Find("ok");
    ASSERT_NE(ok, nullptr) << line;
    if (!ok->bool_value()) {
      const JsonValue* error = parsed->Find("error");
      ASSERT_NE(error, nullptr) << line;
      ASSERT_TRUE(error->is_object()) << line;
      EXPECT_NE(error->Find("code"), nullptr) << line;
      EXPECT_NE(error->Find("message"), nullptr) << line;
      // The deprecated flat rendering is gone from the v1 envelope.
      EXPECT_EQ(parsed->Find("error_string"), nullptr) << line;
    }
  }
}

// ---------------------------------------------------------------------------
// ParseRequest / RenderRequestId unit coverage.

StatusOr<Request> Parse(const std::string& line) {
  auto parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  Request out;
  FAIRHMS_RETURN_IF_ERROR(ParseRequest(*parsed, &out));
  return out;
}

TEST(ParseRequestTest, QueryIsTheDefaultOpAndSolveAnAlias) {
  auto q = Parse(R"({"algorithm": "intcov", "k": 5})");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->op, ProtocolOp::kQuery);
  EXPECT_EQ(q->dataset, "default");
  EXPECT_EQ(q->query.algorithm, "intcov");
  EXPECT_EQ(q->query.k, 5);
  auto s = Parse(R"({"op": "solve", "algorithm": "intcov", "k": 5})");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->op, ProtocolOp::kQuery);
}

TEST(ParseRequestTest, IdTokenRendering) {
  EXPECT_EQ(Parse(R"({"id": "a\"b", "op": "list"})")->id, "\"a\\\"b\"");
  EXPECT_EQ(Parse(R"({"id": 3, "op": "list"})")->id, "3");
  EXPECT_EQ(Parse(R"({"op": "list"})")->id, "");        // Absent.
  EXPECT_EQ(Parse(R"({"id": [1], "op": "list"})")->id, "");  // Non-scalar.
}

TEST(ParseRequestTest, IdSurvivesARejectedLine) {
  auto parsed = ParseJson(R"({"id": "keep", "op": "bogus"})");
  ASSERT_TRUE(parsed.ok());
  Request out;
  const Status status = ParseRequest(*parsed, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(out.id, "\"keep\"");
}

TEST(ParseRequestTest, UnknownOpListsEveryOp) {
  auto r = Parse(R"({"op": "bogus"})");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(
                "want query, insert, delete, register, save, drop, list or "
                "stats"),
            std::string::npos)
      << r.status().message();
}

TEST(ParseRequestTest, DatasetMustBeAString) {
  auto r = Parse(R"({"dataset": 3, "op": "bogus"})");
  ASSERT_FALSE(r.ok());
  // Routing validation outranks the unknown-op error.
  EXPECT_NE(r.status().message().find("\"dataset\" must be a string"),
            std::string::npos);
}

TEST(ParseRequestTest, ExplicitBoundsNeedBothLists) {
  auto r = Parse(
      R"({"algorithm": "intcov", "k": 3, "bounds": "explicit", "lower": [1]})");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("\"upper\""), std::string::npos);
}

TEST(ParseRequestTest, EveryOpParses) {
  EXPECT_EQ(Parse(R"({"op": "insert", "point": [1, 2]})")->op,
            ProtocolOp::kInsert);
  EXPECT_EQ(Parse(R"({"op": "delete", "rows": [0]})")->op,
            ProtocolOp::kDelete);
  EXPECT_EQ(
      Parse(R"({"op": "register", "name": "x", "synthetic": "independent"})")
          ->op,
      ProtocolOp::kRegister);
  EXPECT_EQ(Parse(R"({"op": "save", "name": "x", "path": "p"})")->op,
            ProtocolOp::kSave);
  EXPECT_EQ(Parse(R"({"op": "drop", "name": "x"})")->op, ProtocolOp::kDrop);
  EXPECT_EQ(Parse(R"({"op": "list"})")->op, ProtocolOp::kList);
  EXPECT_EQ(Parse(R"({"op": "stats"})")->op, ProtocolOp::kStats);
}

TEST(RenderRequestIdTest, FallsBackToTheLineNumber) {
  EXPECT_EQ(RenderRequestId(R"({"id": "x"})", 9), "\"x\"");
  EXPECT_EQ(RenderRequestId(R"({"id": 12})", 9), "12");
  EXPECT_EQ(RenderRequestId(R"({"k": 3})", 9), "9");
  EXPECT_EQ(RenderRequestId("not json", 9), "9");
  EXPECT_EQ(RenderRequestId(R"([{"id": "x"}])", 9), "9");
}

// ---------------------------------------------------------------------------
// RenderErrorLine: every status code of the taxonomy under both envelopes
// (the server-layer codes — ResourceExhausted, DeadlineExceeded,
// Unavailable — only reach the wire through this path).

TEST(RenderErrorLineTest, EveryErrorClassUnderBothEnvelopes) {
  const std::pair<Status, const char*> kCases[] = {
      {Status::InvalidArgument("m"), "InvalidArgument"},
      {Status::NotFound("m"), "NotFound"},
      {Status::FailedPrecondition("m"), "FailedPrecondition"},
      {Status::OutOfRange("m"), "OutOfRange"},
      {Status::ResourceExhausted("m"), "ResourceExhausted"},
      {Status::Internal("m"), "Internal"},
      {Status::Unimplemented("m"), "Unimplemented"},
      {Status::IOError("m"), "IOError"},
      {Status::Infeasible("m"), "Infeasible"},
      {Status::DeadlineExceeded("m"), "DeadlineExceeded"},
      {Status::Unavailable("m"), "Unavailable"},
  };
  EnvelopeOptions v0;
  EnvelopeOptions v1;
  v1.version = 1;
  for (const auto& [status, code] : kCases) {
    EXPECT_EQ(RenderErrorLine("\"x\"", status, v0),
              StrFormat("{\"id\": \"x\", \"ok\": false, \"error\": "
                        "\"%s: m\"}",
                        code));
    EXPECT_EQ(RenderErrorLine("\"x\"", status, v1),
              StrFormat("{\"id\": \"x\", \"ok\": false, "
                        "\"protocol_version\": 1, \"error\": {\"code\": "
                        "\"%s\", \"message\": \"m\"}}",
                        code));
  }
}

TEST(RenderErrorLineTest, MessagesAreJsonEscaped) {
  EnvelopeOptions v1;
  v1.version = 1;
  const std::string line =
      RenderErrorLine("1", Status::InvalidArgument("a \"quoted\"\nline"), v1);
  auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(parsed->Find("error")->Find("message")->string_value(),
            "a \"quoted\"\nline");
}

}  // namespace
}  // namespace fairhms
