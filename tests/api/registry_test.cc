// AlgorithmRegistry: every built-in algorithm is registered with coherent
// capability metadata and a sorted parameter schema, lookups are stable,
// and the listing order is deterministic — the contract --list_algos, the
// CLI error messages and the facade all build on.

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/params.h"
#include "api/registry.h"

namespace fairhms {
namespace {

/// The canonical catalogue. Keep in lockstep with the CI --list_algos grep
/// and the determinism suite; a registration regression fails this first.
const std::vector<std::string> kExpectedNames = {
    "bigreedy", "bigreedy+", "dmm",    "fair_greedy", "g_dmm",  "g_greedy",
    "g_hs",     "g_sphere",  "hs",     "intcov",      "rdp_greedy", "sphere"};

TEST(RegistryTest, AllBuiltinAlgorithmsRegistered) {
  EXPECT_EQ(AlgorithmRegistry::Instance().Names(), kExpectedNames);
}

TEST(RegistryTest, NamesSortedAndDeterministic) {
  const auto names = AlgorithmRegistry::Instance().Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names, AlgorithmRegistry::Instance().Names());
}

TEST(RegistryTest, AllMatchesNamesOrder) {
  const auto names = AlgorithmRegistry::Instance().Names();
  const auto all = AlgorithmRegistry::Instance().All();
  ASSERT_EQ(all.size(), names.size());
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i]->name, names[i]);
    EXPECT_FALSE(all[i]->display_name.empty()) << names[i];
    EXPECT_FALSE(all[i]->summary.empty()) << names[i];
    EXPECT_TRUE(static_cast<bool>(all[i]->solve)) << names[i];
  }
}

TEST(RegistryTest, FindKnownAndUnknown) {
  const AlgorithmInfo* info = AlgorithmRegistry::Instance().Find("bigreedy+");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->name, "bigreedy+");
  EXPECT_EQ(info->display_name, "BiGreedy+");
  EXPECT_EQ(AlgorithmRegistry::Instance().Find("no_such_algo"), nullptr);
  EXPECT_EQ(AlgorithmRegistry::Instance().Find(""), nullptr);
}

TEST(RegistryTest, CapabilityMetadata) {
  const auto& registry = AlgorithmRegistry::Instance();
  EXPECT_TRUE(registry.Find("intcov")->caps.exact_2d);
  EXPECT_TRUE(registry.Find("intcov")->caps.fairness_aware);
  EXPECT_FALSE(registry.Find("intcov")->caps.randomized);
  EXPECT_TRUE(registry.Find("bigreedy+")->caps.supports_lambda);
  EXPECT_FALSE(registry.Find("bigreedy")->caps.supports_lambda);
  EXPECT_TRUE(registry.Find("bigreedy")->caps.randomized);
  for (const char* fair :
       {"intcov", "bigreedy", "bigreedy+", "fair_greedy", "g_greedy", "g_dmm",
        "g_sphere", "g_hs"}) {
    EXPECT_TRUE(registry.Find(fair)->caps.fairness_aware) << fair;
  }
  for (const char* unaware : {"rdp_greedy", "dmm", "sphere", "hs"}) {
    EXPECT_FALSE(registry.Find(unaware)->caps.fairness_aware) << unaware;
    EXPECT_FALSE(registry.Find(unaware)->caps.exact_2d) << unaware;
  }
}

TEST(RegistryTest, CapabilitiesToStringFormat) {
  const auto& registry = AlgorithmRegistry::Instance();
  EXPECT_EQ(CapabilitiesToString(registry.Find("intcov")->caps),
            "fair,exact-2d");
  EXPECT_EQ(CapabilitiesToString(registry.Find("bigreedy+")->caps),
            "fair,randomized,lambda");
  EXPECT_EQ(CapabilitiesToString(registry.Find("rdp_greedy")->caps), "-");
}

TEST(RegistryTest, ParamSchemasSortedByName) {
  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    EXPECT_TRUE(std::is_sorted(
        info->params.begin(), info->params.end(),
        [](const ParamSpec& a, const ParamSpec& b) { return a.name < b.name; }))
        << info->name;
    for (const ParamSpec& p : info->params) {
      EXPECT_FALSE(p.name.empty()) << info->name;
      EXPECT_FALSE(p.description.empty())
          << info->name << " param " << p.name;
      EXPECT_FALSE(p.default_value.empty())
          << info->name << " param " << p.name;
    }
  }
}

TEST(RegistryTest, NamesForErrorListsEveryAlgorithm) {
  const std::string joined = AlgorithmRegistry::Instance().NamesForError();
  for (const auto& name : kExpectedNames) {
    EXPECT_NE(joined.find(name), std::string::npos) << name;
  }
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  AlgorithmInfo dup;
  dup.name = "bigreedy";
  dup.display_name = "Dup";
  dup.solve = [](const SolveContext&) -> StatusOr<Solution> {
    return Solution{};
  };
  const Status st = AlgorithmRegistry::Instance().Register(std::move(dup));
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

// --- parameter-schema validation (the uniform InvalidArgument contract) ---

std::vector<ParamSpec> TestSchema() {
  return {
      {"eps", ParamType::kDouble, "granularity", "0.02", 0.0, 1.0, true, true,
       {}},
      {"net_size", ParamType::kInt, "net size", "auto", 1, 1e308, false,
       false, {}},
      {"lazy", ParamType::kBool, "lazy gains", "true", -1e308, 1e308, false,
       false, {}},
      {"mode", ParamType::kString, "traversal", "binary", -1e308, 1e308,
       false, false, {"binary", "linear"}},
  };
}

TEST(ValidateParamsTest, AcceptsWellTypedValuesInRange) {
  AlgoParams params;
  params.SetDouble("eps", 0.5);
  params.SetInt("net_size", 100);
  params.SetBool("lazy", false);
  params.SetString("mode", "linear");
  EXPECT_TRUE(ValidateParams("algo", TestSchema(), params).ok());
}

TEST(ValidateParamsTest, IntAcceptedWhereDoubleExpected) {
  AlgoParams params;
  params.SetInt("eps", 1);  // 1 is out of (0, 1) though -> range error.
  const Status st = ValidateParams("algo", TestSchema(), params);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  AlgoParams ok_params;
  ok_params.SetInt("net_size", 5);
  EXPECT_TRUE(ValidateParams("algo", TestSchema(), ok_params).ok());
}

TEST(ValidateParamsTest, UnknownKeyListsValidNames) {
  AlgoParams params;
  params.SetDouble("epz", 0.5);
  const Status st = ValidateParams("algo", TestSchema(), params);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("unknown parameter 'epz'"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("eps"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("net_size"), std::string::npos) << st.message();
}

TEST(ValidateParamsTest, RangeViolationsRejected) {
  for (const double bad_eps : {0.0, -0.5, 1.0, 2.0}) {
    AlgoParams params;
    params.SetDouble("eps", bad_eps);
    const Status st = ValidateParams("algo", TestSchema(), params);
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << bad_eps;
    EXPECT_NE(st.message().find("out of range"), std::string::npos)
        << st.message();
  }
  AlgoParams zero_net;
  zero_net.SetInt("net_size", 0);
  EXPECT_EQ(ValidateParams("algo", TestSchema(), zero_net).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateParamsTest, TypeMismatchesRejected) {
  AlgoParams params;
  params.SetString("eps", "fast");
  EXPECT_EQ(ValidateParams("algo", TestSchema(), params).code(),
            StatusCode::kInvalidArgument);
  AlgoParams bool_as_int;
  bool_as_int.SetInt("lazy", 1);
  EXPECT_EQ(ValidateParams("algo", TestSchema(), bool_as_int).code(),
            StatusCode::kInvalidArgument);
  AlgoParams double_as_int;
  double_as_int.SetDouble("net_size", 10.5);
  EXPECT_EQ(ValidateParams("algo", TestSchema(), double_as_int).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidateParamsTest, StringChoiceEnforced) {
  AlgoParams params;
  params.SetString("mode", "random");
  const Status st = ValidateParams("algo", TestSchema(), params);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("binary"), std::string::npos) << st.message();
}

TEST(ValidateParamsTest, NonFiniteDoubleRejected) {
  AlgoParams params;
  params.SetDouble("eps", std::numeric_limits<double>::infinity());
  EXPECT_EQ(ValidateParams("algo", TestSchema(), params).code(),
            StatusCode::kInvalidArgument);
}

TEST(AlgoParamsTest, TypedGettersAndKeys) {
  AlgoParams params;
  EXPECT_TRUE(params.empty());
  params.SetInt("b", 7);
  params.SetDouble("a", 0.25);
  params.SetBool("d", true);
  params.SetString("c", "x");
  EXPECT_EQ(params.IntOr("b", 0), 7);
  EXPECT_EQ(params.DoubleOr("a", 0.0), 0.25);
  EXPECT_TRUE(params.BoolOr("d", false));
  EXPECT_EQ(params.StringOr("c", ""), "x");
  // Numeric coercion both ways; absent keys fall back.
  EXPECT_EQ(params.DoubleOr("b", 0.0), 7.0);
  EXPECT_EQ(params.IntOr("a", -1), 0);
  EXPECT_EQ(params.IntOr("missing", 42), 42);
  // Keys come back sorted.
  EXPECT_EQ(params.Keys(), (std::vector<std::string>{"a", "b", "c", "d"}));
}

}  // namespace
}  // namespace fairhms
