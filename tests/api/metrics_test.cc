// OpMetrics: percentile edge cases over the bounded latency reservoir —
// an empty ring must report zeros (not crash or divide), a single sample
// is every percentile, and once the ring wraps the percentiles describe
// the *recent* window while count/total_ms stay exact forever.

#include "api/metrics.h"

#include <cstddef>

#include <gtest/gtest.h>

#include "api/protocol.h"

namespace fairhms {
namespace {

constexpr size_t kQuery = static_cast<size_t>(ProtocolOp::kQuery);
constexpr size_t kList = static_cast<size_t>(ProtocolOp::kList);

TEST(OpMetricsTest, EmptyRingReportsZeros) {
  OpMetrics metrics;
  const OpMetrics::Snapshot snap = metrics.snapshot();
  for (const OpMetrics::OpSnapshot& op : snap.ops) {
    EXPECT_EQ(op.count, 0u);
    EXPECT_EQ(op.errors, 0u);
    EXPECT_EQ(op.total_ms, 0.0);
    EXPECT_EQ(op.p50_ms, 0.0);
    EXPECT_EQ(op.p99_ms, 0.0);
  }
  EXPECT_EQ(snap.served, 0u);
  EXPECT_EQ(snap.failed, 0u);
}

TEST(OpMetricsTest, SingleSampleIsEveryPercentile) {
  OpMetrics metrics;
  metrics.Record(ProtocolOp::kQuery, /*ok=*/true, 7.5);
  const OpMetrics::Snapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.ops[kQuery].count, 1u);
  EXPECT_EQ(snap.ops[kQuery].errors, 0u);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].total_ms, 7.5);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p50_ms, 7.5);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p99_ms, 7.5);
  // Other ops stay untouched.
  EXPECT_EQ(snap.ops[kList].count, 0u);
  EXPECT_EQ(snap.ops[kList].p99_ms, 0.0);
}

TEST(OpMetricsTest, ErrorsCountSeparatelyButStillSample) {
  OpMetrics metrics;
  metrics.Record(ProtocolOp::kQuery, /*ok=*/true, 1.0);
  metrics.Record(ProtocolOp::kQuery, /*ok=*/false, 3.0);
  const OpMetrics::Snapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.ops[kQuery].count, 2u);
  EXPECT_EQ(snap.ops[kQuery].errors, 1u);
  EXPECT_EQ(snap.served, 1u);
  EXPECT_EQ(snap.failed, 1u);
  // The failed request's latency still lands in the window.
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].total_ms, 4.0);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p99_ms, 3.0);
}

TEST(OpMetricsTest, RingWraparoundKeepsRecentWindowAndExactCounts) {
  OpMetrics metrics;
  // Fill the whole ring with slow samples, then overwrite it completely
  // with fast ones: percentiles must describe only the recent window.
  for (size_t i = 0; i < OpMetrics::kLatencyWindow; ++i) {
    metrics.Record(ProtocolOp::kQuery, true, 100.0);
  }
  OpMetrics::Snapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.ops[kQuery].count, OpMetrics::kLatencyWindow);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p50_ms, 100.0);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p99_ms, 100.0);

  for (size_t i = 0; i < OpMetrics::kLatencyWindow; ++i) {
    metrics.Record(ProtocolOp::kQuery, true, 1.0);
  }
  snap = metrics.snapshot();
  // count/total_ms are exact forever, not capped at the window size.
  EXPECT_EQ(snap.ops[kQuery].count, 2 * OpMetrics::kLatencyWindow);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].total_ms,
                   101.0 * static_cast<double>(OpMetrics::kLatencyWindow));
  // Every slow sample has been overwritten.
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p50_ms, 1.0);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p99_ms, 1.0);
}

TEST(OpMetricsTest, PartialWraparoundMixesOldAndNew) {
  OpMetrics metrics;
  for (size_t i = 0; i < OpMetrics::kLatencyWindow; ++i) {
    metrics.Record(ProtocolOp::kQuery, true, 100.0);
  }
  // Overwrite just over half the ring: p50 flips to the new value while
  // p99 still sees the surviving old tail.
  const size_t overwrite = OpMetrics::kLatencyWindow / 2 + 64;
  for (size_t i = 0; i < overwrite; ++i) {
    metrics.Record(ProtocolOp::kQuery, true, 1.0);
  }
  const OpMetrics::Snapshot snap = metrics.snapshot();
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p50_ms, 1.0);
  EXPECT_DOUBLE_EQ(snap.ops[kQuery].p99_ms, 100.0);
}

}  // namespace
}  // namespace fairhms
