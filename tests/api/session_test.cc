// SolverSession: the multi-query engine must (a) pin and validate its
// dataset/grouping, (b) return warm results bit-identical to the cold
// Solver::Solve path, (c) account artifact hits/misses/bytes truthfully,
// and (d) keep cache keys isolated across seeds, net sizes and thread
// counts.

#include "api/session.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/solver.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {
namespace {

struct Instance {
  Dataset data{1};
  Grouping grouping;
  GroupBounds bounds;
};

/// Small 4D instance with quotas >= dim so every algorithm is feasible on
/// the session tests that sweep the registry.
Instance MakeInstance(int dim = 4, int k = 8, uint64_t seed = 11,
                      size_t n = 400) {
  Instance inst;
  Rng rng(seed);
  inst.data = GenIndependent(n, dim, &rng).NormalizedMinMax();
  inst.grouping = GroupBySumRank(inst.data, 2);
  inst.bounds = GroupBounds::Proportional(k, inst.grouping.Counts(), 0.3);
  return inst;
}

SolverRequest MakeRequest(const Instance& inst, const std::string& algo) {
  SolverRequest req;
  req.data = &inst.data;
  req.grouping = &inst.grouping;
  req.bounds = inst.bounds;
  req.algorithm = algo;
  return req;
}

void ExpectSameResult(const SolverResult& a, const SolverResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.solution.rows, b.solution.rows) << label;
  EXPECT_EQ(a.solution.mhr, b.solution.mhr) << label;  // Bit-identical.
  EXPECT_EQ(a.group_counts, b.group_counts) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.note, b.note) << label;
  EXPECT_EQ(a.skyline, b.skyline) << label;
}

TEST(SolverSessionTest, CreateValidatesPinnedObjects) {
  const Instance inst = MakeInstance();
  EXPECT_EQ(SolverSession::Create(nullptr, &inst.grouping).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SolverSession::Create(&inst.data, nullptr).status().code(),
            StatusCode::kInvalidArgument);

  const Dataset empty(2);
  EXPECT_EQ(SolverSession::Create(&empty, &inst.grouping).status().code(),
            StatusCode::kInvalidArgument);

  Grouping short_grouping = inst.grouping;
  short_grouping.group_of.pop_back();
  EXPECT_EQ(
      SolverSession::Create(&inst.data, &short_grouping).status().code(),
      StatusCode::kInvalidArgument);

  EXPECT_TRUE(SolverSession::Create(&inst.data, &inst.grouping).ok());
}

TEST(SolverSessionTest, FillsPinnedObjectsIntoRequests) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  SolverRequest req = MakeRequest(inst, "fair_greedy");
  auto with_pointers = session->Solve(req);
  ASSERT_TRUE(with_pointers.ok()) << with_pointers.status().ToString();

  req.data = nullptr;
  req.grouping = nullptr;
  auto filled = session->Solve(req);
  ASSERT_TRUE(filled.ok()) << filled.status().ToString();
  ExpectSameResult(*with_pointers, *filled, "null-filled request");
}

TEST(SolverSessionTest, RejectsForeignPinnedObjects) {
  const Instance inst = MakeInstance();
  const Instance other = MakeInstance(4, 8, /*seed=*/99);
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  SolverRequest req = MakeRequest(inst, "fair_greedy");
  req.data = &other.data;
  auto foreign_data = session->Solve(req);
  ASSERT_FALSE(foreign_data.ok());
  EXPECT_EQ(foreign_data.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(foreign_data.status().message().find("pinned dataset"),
            std::string::npos);

  req = MakeRequest(inst, "fair_greedy");
  req.grouping = &other.grouping;
  auto foreign_grouping = session->Solve(req);
  ASSERT_FALSE(foreign_grouping.ok());
  EXPECT_EQ(foreign_grouping.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(foreign_grouping.status().message().find("pinned grouping"),
            std::string::npos);
}

TEST(SolverSessionTest, WarmResultsAreBitIdenticalToCold) {
  // The core guarantee, spot-checked across algorithm families (net-based
  // fair, unconstrained-baseline, exact-2D-projection, group-adapted); the
  // full 12-algorithm sweep lives in the integration determinism suite.
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());
  for (const char* algo :
       {"bigreedy", "bigreedy+", "sphere", "hs", "intcov", "g_hs"}) {
    const SolverRequest req = MakeRequest(inst, algo);
    auto cold = Solver::Solve(req);
    ASSERT_TRUE(cold.ok()) << algo << ": " << cold.status().ToString();
    auto warm_first = session->Solve(req);
    ASSERT_TRUE(warm_first.ok())
        << algo << ": " << warm_first.status().ToString();
    auto warm_second = session->Solve(req);
    ASSERT_TRUE(warm_second.ok())
        << algo << ": " << warm_second.status().ToString();
    ExpectSameResult(*cold, *warm_first, std::string(algo) + " first");
    ExpectSameResult(*cold, *warm_second, std::string(algo) + " repeat");
  }
}

TEST(SolverSessionTest, CacheHitsAccumulateAcrossRepeatedQueries) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  const SolverRequest req = MakeRequest(inst, "bigreedy");
  ASSERT_TRUE(session->Solve(req).ok());
  const CacheStats after_first = session->cache_stats();
  EXPECT_GE(after_first.nets.misses, 1u);
  EXPECT_GE(after_first.evaluators.misses, 1u);
  EXPECT_GE(after_first.pools.misses, 1u);
  EXPECT_GT(after_first.TotalBytes(), 0u);

  ASSERT_TRUE(session->Solve(req).ok());
  const CacheStats after_second = session->cache_stats();
  EXPECT_GE(after_second.nets.hits, 1u);
  EXPECT_GE(after_second.evaluators.hits, 1u);
  EXPECT_GE(after_second.pools.hits, 1u);
  // The repeat created no new artifacts.
  EXPECT_EQ(after_second.TotalMisses(), after_first.TotalMisses());
  EXPECT_EQ(after_second.TotalBytes(), after_first.TotalBytes());
  EXPECT_FALSE(after_second.ToString().empty());
}

TEST(SolverSessionTest, CacheKeysIsolateSeedsAndNetSizes) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  SolverRequest req = MakeRequest(inst, "bigreedy");
  req.seed = 1;
  ASSERT_TRUE(session->Solve(req).ok());
  const uint64_t nets_after_one = session->cache_stats().nets.misses;

  // A different seed must sample its own net, not alias seed 1's — and the
  // warm result must still equal its own cold path.
  req.seed = 2;
  auto warm = session->Solve(req);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(session->cache_stats().nets.misses, nets_after_one);
  auto cold = Solver::Solve(req);
  ASSERT_TRUE(cold.ok());
  ExpectSameResult(*cold, *warm, "seed 2");

  // Same seed, different net size: again a distinct artifact.
  const uint64_t nets_after_two = session->cache_stats().nets.misses;
  req.params.SetInt("net_size", 77);
  auto sized = session->Solve(req);
  ASSERT_TRUE(sized.ok());
  EXPECT_GT(session->cache_stats().nets.misses, nets_after_two);
  auto sized_cold = Solver::Solve(req);
  ASSERT_TRUE(sized_cold.ok());
  ExpectSameResult(*sized_cold, *sized, "net_size 77");
}

TEST(SolverSessionTest, CacheKeysIsolateThreadCounts) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  SolverRequest req = MakeRequest(inst, "bigreedy");
  req.threads = 1;
  auto serial = session->Solve(req);
  ASSERT_TRUE(serial.ok());
  const uint64_t evals_serial = session->cache_stats().evaluators.misses;

  req.threads = 2;
  auto parallel = session->Solve(req);
  ASSERT_TRUE(parallel.ok());
  // Distinct evaluator entry (threads is part of the key), same bits (the
  // PR 2 cross-thread determinism contract).
  EXPECT_GT(session->cache_stats().evaluators.misses, evals_serial);
  ExpectSameResult(*serial, *parallel, "threads 1 vs 2");
}

TEST(SolverSessionTest, ProjectionPreparedOncePerSession) {
  const Instance inst = MakeInstance(/*dim=*/4);
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  const SolverRequest req = MakeRequest(inst, "intcov");
  auto first = session->Solve(req);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NE(first->note.find("projection"), std::string::npos);
  EXPECT_EQ(session->cache_stats().projections.misses, 1u);
  EXPECT_EQ(session->cache_stats().projections.hits, 0u);

  auto second = session->Solve(req);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(session->cache_stats().projections.misses, 1u);
  EXPECT_EQ(session->cache_stats().projections.hits, 1u);
  ExpectSameResult(*first, *second, "projected intcov repeat");
}

TEST(SolverSessionTest, SkylineSharedAcrossUnconstrainedBaselines) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  // Different baselines, same pinned skyline: one miss, then hits.
  ASSERT_TRUE(session->Solve(MakeRequest(inst, "rdp_greedy")).ok());
  const CacheStats after_first = session->cache_stats();
  EXPECT_EQ(after_first.skylines.misses, 1u);
  ASSERT_TRUE(session->Solve(MakeRequest(inst, "sphere")).ok());
  const CacheStats after_second = session->cache_stats();
  EXPECT_EQ(after_second.skylines.misses, 1u);
  EXPECT_GT(after_second.skylines.hits, after_first.skylines.hits);
}

TEST(SolverSessionTest, ClearCacheKeepsResultsIdentical) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  const SolverRequest req = MakeRequest(inst, "bigreedy");
  auto before = session->Solve(req);
  ASSERT_TRUE(before.ok());
  EXPECT_GT(session->cache_stats().TotalBytes(), 0u);

  session->ClearCache();
  EXPECT_EQ(session->cache_stats().TotalBytes(), 0u);

  auto after = session->Solve(req);
  ASSERT_TRUE(after.ok());
  ExpectSameResult(*before, *after, "post-clear");
}

TEST(SolverSessionTest, GroupCountsMatchGrouping) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->group_counts(), inst.grouping.Counts());
  EXPECT_EQ(&session->data(), &inst.data);
  EXPECT_EQ(&session->grouping(), &inst.grouping);
}

TEST(SolverSessionTest, ValidationErrorsMatchSolverValidate) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  SolverRequest unknown = MakeRequest(inst, "no_such_algo");
  auto result = session->Solve(unknown);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("unknown algorithm"),
            std::string::npos);

  SolverRequest bad_param = MakeRequest(inst, "bigreedy");
  bad_param.params.SetDouble("eps", 0.0);
  EXPECT_EQ(session->Solve(bad_param).status().code(),
            StatusCode::kInvalidArgument);

  SolverRequest bad_k = MakeRequest(inst, "bigreedy");
  bad_k.bounds.k = 0;
  EXPECT_EQ(session->Solve(bad_k).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fairhms
