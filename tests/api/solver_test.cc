// Solver::Solve facade: every registered algorithm solves a small synthetic
// instance end to end, request validation rejects malformed shapes and
// parameters with uniform InvalidArgument messages, and the exact-2D
// projection fallback plus unconstrained-baseline skyline preparation
// happen inside the facade.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/fair_greedy.h"
#include "api/solver.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

/// A small 2D instance every algorithm can handle: 2 equal groups, k = 6,
/// per-group quotas >= d so g_sphere is feasible.
struct Instance {
  Dataset data{1};
  Grouping grouping;
  GroupBounds bounds;
};

Instance MakeInstance(int dim = 2, int k = 6, uint64_t seed = 7) {
  Instance inst;
  Rng rng(seed);
  inst.data = GenIndependent(200, dim, &rng).NormalizedMinMax();
  inst.grouping = GroupBySumRank(inst.data, 2);
  inst.bounds = GroupBounds::Proportional(k, inst.grouping.Counts(), 0.3);
  return inst;
}

SolverRequest MakeRequest(const Instance& inst, const std::string& algo) {
  SolverRequest req;
  req.data = &inst.data;
  req.grouping = &inst.grouping;
  req.bounds = inst.bounds;
  req.algorithm = algo;
  return req;
}

TEST(SolverTest, EveryRegisteredAlgorithmSolves) {
  const Instance inst = MakeInstance();
  for (const AlgorithmInfo* info : AlgorithmRegistry::Instance().All()) {
    const SolverRequest req = MakeRequest(inst, info->name);
    auto result = Solver::Solve(req);
    ASSERT_TRUE(result.ok())
        << info->name << ": " << result.status().ToString();
    EXPECT_EQ(result->algorithm, info->name);
    EXPECT_FALSE(result->solution.rows.empty()) << info->name;
    EXPECT_LE(result->solution.rows.size(),
              static_cast<size_t>(inst.bounds.k))
        << info->name;
    ASSERT_EQ(result->group_counts.size(),
              static_cast<size_t>(inst.grouping.num_groups))
        << info->name;
    EXPECT_EQ(result->solution.algorithm, info->display_name) << info->name;
    EXPECT_GE(result->solve_ms, 0.0) << info->name;
    EXPECT_GE(result->total_ms, result->solve_ms) << info->name;
    if (info->caps.fairness_aware) {
      EXPECT_EQ(result->violations, 0) << info->name;
      EXPECT_EQ(result->solution.rows.size(),
                static_cast<size_t>(inst.bounds.k))
          << info->name;
    } else {
      EXPECT_NE(result->note.find("fairness-unaware"), std::string::npos)
          << info->name;
    }
    // Every selected row must be a valid dataset index.
    for (int r : result->solution.rows) {
      EXPECT_GE(r, 0) << info->name;
      EXPECT_LT(r, static_cast<int>(inst.data.size())) << info->name;
    }
  }
}

TEST(SolverTest, UnknownAlgorithmListsRegistry) {
  const Instance inst = MakeInstance();
  auto result = Solver::Solve(MakeRequest(inst, "no_such_algo"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("unknown algorithm 'no_such_algo'"),
            std::string::npos)
      << result.status().message();
  // The error enumerates the valid names, straight from the registry.
  EXPECT_NE(result.status().message().find("bigreedy"), std::string::npos);
  EXPECT_NE(result.status().message().find("intcov"), std::string::npos);
}

TEST(SolverTest, EmptyAlgorithmIsAnError) {
  const Instance inst = MakeInstance();
  auto result = Solver::Solve(MakeRequest(inst, ""));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("no algorithm requested"),
            std::string::npos)
      << result.status().message();
}

TEST(SolverTest, RequestShapeValidation) {
  const Instance inst = MakeInstance();

  SolverRequest no_data = MakeRequest(inst, "bigreedy");
  no_data.data = nullptr;
  EXPECT_EQ(Solver::Validate(no_data).code(), StatusCode::kInvalidArgument);

  SolverRequest no_grouping = MakeRequest(inst, "bigreedy");
  no_grouping.grouping = nullptr;
  EXPECT_EQ(Solver::Validate(no_grouping).code(),
            StatusCode::kInvalidArgument);

  SolverRequest bad_k = MakeRequest(inst, "bigreedy");
  bad_k.bounds.k = 0;
  const Status k_st = Solver::Validate(bad_k);
  EXPECT_EQ(k_st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(k_st.message().find("k must be >= 1"), std::string::npos)
      << k_st.message();
  bad_k.bounds.k = -3;
  EXPECT_EQ(Solver::Validate(bad_k).code(), StatusCode::kInvalidArgument);

  SolverRequest bad_threads = MakeRequest(inst, "bigreedy");
  bad_threads.threads = -1;
  EXPECT_EQ(Solver::Validate(bad_threads).code(),
            StatusCode::kInvalidArgument);
  bad_threads.threads = 5000;
  EXPECT_EQ(Solver::Validate(bad_threads).code(),
            StatusCode::kInvalidArgument);

  // Grouping / bounds shape mismatches.
  SolverRequest mismatched = MakeRequest(inst, "bigreedy");
  Grouping wrong = inst.grouping;
  wrong.group_of.pop_back();
  mismatched.grouping = &wrong;
  EXPECT_EQ(Solver::Validate(mismatched).code(),
            StatusCode::kInvalidArgument);

  SolverRequest wrong_groups = MakeRequest(inst, "bigreedy");
  wrong_groups.bounds.lower.push_back(0);
  wrong_groups.bounds.upper.push_back(1);
  EXPECT_EQ(Solver::Validate(wrong_groups).code(),
            StatusCode::kInvalidArgument);

  // A well-formed request validates without running anything.
  EXPECT_TRUE(Solver::Validate(MakeRequest(inst, "bigreedy")).ok());
}

TEST(SolverTest, ParamValidationIsUniform) {
  const Instance inst = MakeInstance();

  SolverRequest bad_eps = MakeRequest(inst, "bigreedy");
  bad_eps.params.SetDouble("eps", 0.0);
  const Status eps_st = Solver::Validate(bad_eps);
  EXPECT_EQ(eps_st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(eps_st.message().find("out of range"), std::string::npos)
      << eps_st.message();

  SolverRequest bad_net = MakeRequest(inst, "sphere");
  bad_net.params.SetInt("net_size", 0);
  EXPECT_EQ(Solver::Validate(bad_net).code(), StatusCode::kInvalidArgument);

  SolverRequest bad_lambda = MakeRequest(inst, "bigreedy+");
  bad_lambda.params.SetDouble("lambda", -0.1);
  EXPECT_EQ(Solver::Validate(bad_lambda).code(),
            StatusCode::kInvalidArgument);

  // lambda belongs to bigreedy+ only; plain bigreedy rejects it by name.
  SolverRequest foreign = MakeRequest(inst, "bigreedy");
  foreign.params.SetDouble("lambda", 0.04);
  const Status foreign_st = Solver::Validate(foreign);
  EXPECT_EQ(foreign_st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(foreign_st.message().find("unknown parameter 'lambda'"),
            std::string::npos)
      << foreign_st.message();

  SolverRequest bad_type = MakeRequest(inst, "bigreedy");
  bad_type.params.SetString("eps", "small");
  EXPECT_EQ(Solver::Validate(bad_type).code(), StatusCode::kInvalidArgument);

  SolverRequest bad_choice = MakeRequest(inst, "bigreedy");
  bad_choice.params.SetString("tau_search", "zigzag");
  EXPECT_EQ(Solver::Validate(bad_choice).code(),
            StatusCode::kInvalidArgument);
}

TEST(SolverTest, ValidParamsReachTheAlgorithm) {
  const Instance inst = MakeInstance();
  SolverRequest req = MakeRequest(inst, "bigreedy");
  req.params.SetInt("net_size", 64);
  req.params.SetDouble("eps", 0.05);
  req.params.SetString("tau_search", "linear");
  req.params.SetBool("lazy", false);
  auto result = Solver::Solve(req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->violations, 0);
}

TEST(SolverTest, ExactTwoDProjectionFallback) {
  const Instance inst4d = MakeInstance(/*dim=*/4, /*k=*/6, /*seed=*/21);
  auto projected = Solver::Solve(MakeRequest(inst4d, "intcov"));
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  EXPECT_NE(projected->note.find("projection"), std::string::npos)
      << projected->note;
  EXPECT_EQ(projected->violations, 0);

  // On native 2D data there is no caveat.
  const Instance inst2d = MakeInstance(/*dim=*/2, /*k=*/6, /*seed=*/21);
  auto native = Solver::Solve(MakeRequest(inst2d, "intcov"));
  ASSERT_TRUE(native.ok());
  EXPECT_TRUE(native->note.empty()) << native->note;
}

TEST(SolverTest, OneDimensionalDataRejectedForExact2D) {
  const Instance inst1d = MakeInstance(/*dim=*/1, /*k=*/6, /*seed=*/3);
  // Caught at validation time, not only at solve time — admission-control
  // callers of Validate() see everything Solve would reject.
  EXPECT_EQ(Solver::Validate(MakeRequest(inst1d, "intcov")).code(),
            StatusCode::kInvalidArgument);
  auto result = Solver::Solve(MakeRequest(inst1d, "intcov"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolverTest, InfeasibleBoundsRejectedBeforeSolving) {
  Instance inst = MakeInstance();
  // Lower bounds exceeding k are infeasible for every algorithm.
  inst.bounds.lower = {5, 5};
  inst.bounds.upper = {6, 6};
  auto result = Solver::Solve(MakeRequest(inst, "bigreedy"));
  ASSERT_FALSE(result.ok());
}

TEST(SolverTest, SkylineExposedWhenTheFacadeComputesIt) {
  const Instance inst = MakeInstance();
  // Unconstrained baselines run on the global skyline; the facade hands it
  // back so callers can reuse it for reference evaluation.
  auto unaware = Solver::Solve(MakeRequest(inst, "rdp_greedy"));
  ASSERT_TRUE(unaware.ok()) << unaware.status().ToString();
  EXPECT_EQ(unaware->skyline, ComputeSkyline(inst.data));
  // Fairness-aware algorithms never needed one — stays empty.
  auto fair = Solver::Solve(MakeRequest(inst, "bigreedy"));
  ASSERT_TRUE(fair.ok());
  EXPECT_TRUE(fair->skyline.empty());
}

TEST(SolverTest, FacadeMatchesDirectCall) {
  // The facade adds no solver logic of its own: going through
  // Solver::Solve must select the same rows as wiring the algorithm by
  // hand (here: fair_greedy, deterministic).
  const Instance inst = MakeInstance(/*dim=*/3, /*k=*/8, /*seed=*/33);
  SolverRequest req = MakeRequest(inst, "fair_greedy");
  req.threads = 1;
  auto via_facade = Solver::Solve(req);
  ASSERT_TRUE(via_facade.ok()) << via_facade.status().ToString();

  FairGreedyOptions opts;
  opts.threads = 1;
  auto direct = FairGreedy(inst.data, inst.grouping, inst.bounds, opts);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_facade->solution.rows, direct->rows);
  EXPECT_EQ(via_facade->solution.mhr, direct->mhr);
}

}  // namespace
}  // namespace fairhms
