// Dynamic SolverSession: sessions survive dataset mutations, and a warm
// query after any mix of inserts/deletes is bit-identical to a cold
// Solver::Solve against the mutated dataset — for every registered
// algorithm. Also covers the update API surface itself (group routing,
// new-group creation, error paths) and the empty-group-after-deletes
// regression end to end.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "api/solver.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {
namespace {

// Spelled out for the same static-initialization reason as
// determinism_test.cc; RegistryCoversUpdateSuite guards against drift.
const std::string kAlgorithms[] = {
    "bigreedy", "bigreedy+", "dmm",    "fair_greedy", "g_dmm",  "g_greedy",
    "g_hs",     "g_sphere",  "hs",     "intcov",      "rdp_greedy", "sphere"};

struct Instance {
  Dataset data{1};
  Grouping grouping;
};

Instance MakeInstance(uint64_t seed, size_t n = 400, int dim = 4,
                      int groups = 3) {
  Instance inst;
  Rng rng(seed);
  inst.data = GenIndependent(n, dim, &rng).NormalizedMinMax();
  inst.grouping = GroupBySumRank(inst.data, groups);
  return inst;
}

/// Applies a deterministic burst of inserts and deletes through the
/// session (explicit group ids — the instance grouping is sum-rank).
void Churn(SolverSession* session, Dataset* data, Rng* rng, int inserts,
           int deletes) {
  const int dim = data->dim();
  const int groups = session->grouping().num_groups;
  for (int i = 0; i < inserts; ++i) {
    std::vector<double> coords(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) coords[static_cast<size_t>(j)] = rng->Uniform();
    const int g = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(groups)));
    auto row = session->Insert(coords, {}, g);
    ASSERT_TRUE(row.ok()) << row.status().ToString();
  }
  for (int i = 0; i < deletes; ++i) {
    const std::vector<int> live = data->LiveRows();
    ASSERT_FALSE(live.empty());
    const int row = live[rng->UniformInt(live.size())];
    ASSERT_TRUE(session->Erase({row}).ok());
  }
}

class SessionUpdateTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SessionUpdateTest, WarmAfterUpdatesMatchesColdOnMutatedData) {
  const std::string algo = GetParam();
  // dim = 3 keeps every per-group quota >= dim across the churn (the
  // g_sphere feasibility condition, as in determinism_test).
  Instance inst = MakeInstance(/*seed=*/303, /*n=*/400, /*dim=*/3);
  auto session = SolverSession::CreateDynamic(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  SolverRequest request;
  request.algorithm = algo;
  request.threads = 1;

  Rng rng(404);
  for (int round = 0; round < 3; ++round) {
    // Warm the cache on the current state, then mutate.
    request.bounds = GroupBounds::Proportional(
        12, inst.grouping.LiveCounts(inst.data), 0.2);
    ASSERT_TRUE(session->Solve(request).ok()) << algo;
    Churn(&*session, &inst.data, &rng, /*inserts=*/15, /*deletes=*/10);

    request.bounds = GroupBounds::Proportional(
        12, inst.grouping.LiveCounts(inst.data), 0.2);
    auto warm = session->Solve(request);
    ASSERT_TRUE(warm.ok()) << algo << ": " << warm.status().ToString();

    SolverRequest cold_req = request;
    cold_req.data = &inst.data;
    cold_req.grouping = &inst.grouping;
    auto cold = Solver::Solve(cold_req);
    ASSERT_TRUE(cold.ok()) << algo << ": " << cold.status().ToString();

    EXPECT_EQ(warm->solution.rows, cold->solution.rows)
        << algo << " round " << round;
    EXPECT_EQ(warm->solution.mhr, cold->solution.mhr)
        << algo << " round " << round;
    EXPECT_EQ(warm->group_counts, cold->group_counts)
        << algo << " round " << round;
    EXPECT_EQ(warm->violations, cold->violations)
        << algo << " round " << round;

    // Mutations never resurrect an erased row into a solution.
    for (int row : warm->solution.rows) {
      EXPECT_TRUE(inst.data.live(static_cast<size_t>(row))) << algo;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SessionUpdateTest,
                         ::testing::ValuesIn(kAlgorithms),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '+') c = 'P';
                           }
                           return name;
                         });

TEST(SessionUpdateTest, RegistryCoversUpdateSuite) {
  std::vector<std::string> expected(std::begin(kAlgorithms),
                                    std::end(kAlgorithms));
  EXPECT_EQ(AlgorithmRegistry::Instance().Names(), expected);
}

TEST(SessionUpdateTest, StaticSessionRejectsUpdates) {
  Instance inst = MakeInstance(1);
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->dynamic());
  EXPECT_EQ(session->Insert({0.1, 0.1, 0.1, 0.1}, {}, 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session->Erase({0}).code(), StatusCode::kFailedPrecondition);
}

TEST(SessionUpdateTest, InsertNeedsARoutableGroup) {
  Instance inst = MakeInstance(2);
  auto session = SolverSession::CreateDynamic(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());
  // Sum-rank grouping, no columns: -1 cannot be derived...
  EXPECT_EQ(session->Insert({0.1, 0.1, 0.1, 0.1}, {}).status().code(),
            StatusCode::kInvalidArgument);
  // ...an explicit id works, an out-of-range one does not.
  EXPECT_TRUE(session->Insert({0.1, 0.1, 0.1, 0.1}, {}, 2).ok());
  EXPECT_EQ(session->Insert({0.1, 0.1, 0.1, 0.1}, {}, 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionUpdateTest, CategoricalColumnsRouteAndOpenGroups) {
  Rng rng(5);
  Dataset data = MakeAdultSim(&rng, 200).NormalizedMinMax();
  auto grouping = GroupByCategorical(data, "gender");
  ASSERT_TRUE(grouping.ok());
  const int before = grouping->num_groups;
  auto session =
      SolverSession::CreateDynamic(&data, &*grouping, {"gender"});
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  // Route into an existing group by codes alone.
  std::vector<int> codes(static_cast<size_t>(data.num_categorical()), 0);
  auto row = session->Insert(
      std::vector<double>(static_cast<size_t>(data.dim()), 0.5), codes);
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_LT(grouping->group_of[static_cast<size_t>(*row)], before);
  EXPECT_EQ(grouping->num_groups, before);

  // An unseen label opens a new group.
  const int gender_col = *data.FindCategorical("gender");
  codes[static_cast<size_t>(gender_col)] =
      data.AddCategoricalLabel(gender_col, "nonbinary");
  auto row2 = session->Insert(
      std::vector<double>(static_cast<size_t>(data.dim()), 0.5), codes);
  ASSERT_TRUE(row2.ok()) << row2.status().ToString();
  EXPECT_EQ(grouping->num_groups, before + 1);
  EXPECT_EQ(grouping->group_of[static_cast<size_t>(*row2)], before);
  EXPECT_EQ(grouping->names.back(), "nonbinary");

  // The new group is queryable right away under proportional bounds.
  SolverRequest request;
  request.algorithm = "fair_greedy";
  request.bounds =
      GroupBounds::Proportional(6, grouping->LiveCounts(data), 0.2);
  auto result = session->Solve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->violations, 0);
}

TEST(SessionUpdateTest, DeletesEmptyingAGroupKeepProportionalFeasible) {
  // The dynamic face of the empty-group bugfix: drain one group entirely
  // mid-session; proportional bounds built from the session's live counts
  // must stay feasible and solvable for a fairness-aware algorithm.
  Instance inst = MakeInstance(/*seed=*/6, /*n=*/120, /*dim=*/3,
                               /*groups=*/3);
  auto session = SolverSession::CreateDynamic(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  std::vector<int> group1;
  for (size_t i = 0; i < inst.grouping.group_of.size(); ++i) {
    if (inst.grouping.group_of[i] == 1) group1.push_back(static_cast<int>(i));
  }
  ASSERT_TRUE(session->Erase(group1).ok());
  ASSERT_EQ(inst.grouping.LiveCounts(inst.data)[1], 0);

  SolverRequest request;
  request.algorithm = "fair_greedy";
  request.bounds = GroupBounds::Proportional(
      8, inst.grouping.LiveCounts(inst.data), 0.1);
  EXPECT_EQ(request.bounds.lower[1], 0);
  EXPECT_EQ(request.bounds.upper[1], 0);
  auto result = session->Solve(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->group_counts[1], 0);
  EXPECT_EQ(result->violations, 0);

  // Stale bounds from before the deletes now name the starving group.
  SolverRequest stale = request;
  stale.bounds = GroupBounds::Explicit(8, {1, 1, 1}, {4, 4, 4}).value();
  const Status st = session->Solve(stale).status();
  EXPECT_EQ(st.code(), StatusCode::kInfeasible);
  EXPECT_NE(st.message().find("group 1"), std::string::npos)
      << st.ToString();
}

TEST(SessionUpdateTest, EverythingErasedIsACleanError) {
  Instance inst = MakeInstance(/*seed=*/7, /*n=*/12, /*dim=*/2,
                               /*groups=*/1);
  auto session = SolverSession::CreateDynamic(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Erase(inst.data.LiveRows()).ok());
  SolverRequest request;
  request.algorithm = "bigreedy";
  request.bounds = GroupBounds::Proportional(
      2, inst.grouping.LiveCounts(inst.data), 0.1);
  EXPECT_EQ(session->Solve(request).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fairhms
