#include "core/net_evaluator.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;

TEST(NetEvaluatorTest, BestAndHappinessOnAxes) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.5, 0.5}});
  const UtilityNet net = UtilityNet::Grid2D(3);  // (0,1), diag, (1,0).
  const NetEvaluator eval(&data, &net, {0, 1, 2});
  // Direction (0,1): best is point 1 with score 1.
  EXPECT_NEAR(eval.best(0), 1.0, 1e-12);
  EXPECT_NEAR(eval.PointHappiness(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(eval.PointHappiness(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(eval.PointHappiness(0, 2), 0.5, 1e-12);
  // Direction (1,0): best is point 0.
  EXPECT_NEAR(eval.PointHappiness(2, 0), 1.0, 1e-12);
}

TEST(NetEvaluatorTest, MhrOfFullSetIsOne) {
  Rng rng(3);
  const Dataset data = GenIndependent(100, 3, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(3, 200, &rng);
  std::vector<int> all(100);
  std::iota(all.begin(), all.end(), 0);
  const NetEvaluator eval(&data, &net, all);
  EXPECT_NEAR(eval.Mhr(all), 1.0, 1e-12);
}

TEST(NetEvaluatorTest, MhrEmptySetIsZero) {
  const Dataset data = MakeDataset({{1, 1}});
  const UtilityNet net = UtilityNet::Grid2D(5);
  const NetEvaluator eval(&data, &net, {0});
  EXPECT_DOUBLE_EQ(eval.Mhr({}), 0.0);
}

TEST(NetEvaluatorTest, MhrMonotoneInSubset) {
  Rng rng(5);
  const Dataset data = GenIndependent(50, 3, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(3, 300, &rng);
  std::vector<int> all(50);
  std::iota(all.begin(), all.end(), 0);
  const NetEvaluator eval(&data, &net, all);
  EXPECT_LE(eval.Mhr({0, 1}), eval.Mhr({0, 1, 2, 3}) + 1e-12);
}

TEST(NetEvaluatorTest, CachedRowsMatchUncached) {
  Rng rng(7);
  const Dataset data = GenIndependent(40, 4, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(4, 128, &rng);
  std::vector<int> all(40);
  std::iota(all.begin(), all.end(), 0);
  NetEvaluator eval(&data, &net, all);
  std::vector<double> uncached(net.size());
  eval.PointHappinessRow(7, uncached.data());
  eval.CacheCandidates(all);
  ASSERT_NE(eval.cached_row(7), nullptr);
  std::vector<double> cached(net.size());
  eval.PointHappinessRow(7, cached.data());
  for (size_t j = 0; j < net.size(); ++j) {
    EXPECT_DOUBLE_EQ(cached[j], uncached[j]);
  }
}

TEST(NetEvaluatorTest, CacheSkippedWhenOverBudget) {
  Rng rng(9);
  const Dataset data = GenIndependent(40, 3, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(3, 64, &rng);
  std::vector<int> all(40);
  std::iota(all.begin(), all.end(), 0);
  NetEvaluator eval(&data, &net, all);
  eval.CacheCandidates(all, /*max_entries=*/10);  // 40*64 > 10.
  EXPECT_EQ(eval.cached_row(0), nullptr);
}

TEST(TruncatedMhrStateTest, AddMatchesRecompute) {
  Rng rng(11);
  const Dataset data = GenIndependent(30, 3, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(3, 100, &rng);
  std::vector<int> all(30);
  std::iota(all.begin(), all.end(), 0);
  const NetEvaluator eval(&data, &net, all);

  TruncatedMhrState state(&eval);
  std::vector<int> chosen;
  for (int r : {3, 17, 29}) {
    state.Add(r);
    chosen.push_back(r);
  }
  EXPECT_NEAR(state.NetMhr(), eval.Mhr(chosen), 1e-12);
  // Truncated value from scratch.
  const double tau = 0.8;
  double expect = 0.0;
  for (size_t j = 0; j < net.size(); ++j) {
    expect += std::min(eval.Hr(j, chosen), tau);
  }
  expect /= static_cast<double>(net.size());
  EXPECT_NEAR(state.TruncatedValue(tau), expect, 1e-12);
}

TEST(TruncatedMhrStateTest, MarginalGainMatchesValueDelta) {
  Rng rng(13);
  const Dataset data = GenIndependent(25, 3, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(3, 80, &rng);
  std::vector<int> all(25);
  std::iota(all.begin(), all.end(), 0);
  const NetEvaluator eval(&data, &net, all);

  const double tau = 0.9;
  TruncatedMhrState state(&eval);
  state.Add(0);
  state.Add(5);
  const double before = state.TruncatedValue(tau);
  const double gain = state.MarginalGain(10, tau);
  state.Add(10);
  EXPECT_NEAR(state.TruncatedValue(tau), before + gain, 1e-12);
}

TEST(TruncatedMhrStateTest, GainNonnegativeAndMonotone) {
  Rng rng(17);
  const Dataset data = GenIndependent(20, 4, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(4, 60, &rng);
  std::vector<int> all(20);
  std::iota(all.begin(), all.end(), 0);
  const NetEvaluator eval(&data, &net, all);
  TruncatedMhrState state(&eval);
  for (int r = 0; r < 20; ++r) {
    EXPECT_GE(state.MarginalGain(r, 0.7), 0.0);
  }
}

// Submodularity of mhr_tau (paper Lemma 4.3): gains diminish as the set
// grows. Property-tested on random instances.
TEST(TruncatedMhrStateTest, SubmodularityProperty) {
  Rng rng(19);
  for (int trial = 0; trial < 10; ++trial) {
    const Dataset data = GenIndependent(30, 3, &rng);
    const UtilityNet net = UtilityNet::SampleRandom(3, 50, &rng);
    std::vector<int> all(30);
    std::iota(all.begin(), all.end(), 0);
    const NetEvaluator eval(&data, &net, all);
    const double tau = 0.5 + 0.5 * rng.Uniform();

    // S1 subset of S2, p outside S2.
    TruncatedMhrState s1(&eval);
    TruncatedMhrState s2(&eval);
    for (int r : {1, 2, 3}) {
      s1.Add(r);
      s2.Add(r);
    }
    for (int r : {4, 5, 6, 7}) s2.Add(r);
    for (int p = 8; p < 30; ++p) {
      EXPECT_GE(s1.MarginalGain(p, tau), s2.MarginalGain(p, tau) - 1e-12)
          << "trial " << trial << " p " << p;
    }
  }
}

TEST(TruncatedMhrStateTest, ResetClearsState) {
  Rng rng(23);
  const Dataset data = GenIndependent(10, 2, &rng);
  const UtilityNet net = UtilityNet::Grid2D(10);
  std::vector<int> all(10);
  std::iota(all.begin(), all.end(), 0);
  const NetEvaluator eval(&data, &net, all);
  TruncatedMhrState state(&eval);
  state.Add(0);
  state.Reset();
  EXPECT_DOUBLE_EQ(state.TruncatedValue(1.0), 0.0);
  EXPECT_DOUBLE_EQ(state.NetMhr(), 0.0);
}

TEST(NetEvaluatorTest, DenominatorUsesDbRowsOnly) {
  // db = {(0.5, 0.5)}; point (1,1) outside db scores happiness capped at 1.
  const Dataset data = MakeDataset({{0.5, 0.5}, {1, 1}});
  const UtilityNet net = UtilityNet::Grid2D(5);
  const NetEvaluator eval(&data, &net, {0});
  EXPECT_NEAR(eval.PointHappiness(2, 1), 1.0, 1e-12);  // Clamped.
  EXPECT_NEAR(eval.PointHappiness(2, 0), 1.0, 1e-12);
}

}  // namespace
}  // namespace fairhms
