// Bit-identity of the parallel evaluation engine: every evaluator result
// must match the serial (threads = 1) path exactly — not approximately —
// for any thread count.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/exact_evaluator.h"
#include "core/net_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "utility/utility_net.h"

namespace fairhms {
namespace {

constexpr int kThreadCounts[] = {2, 3, 8};

TEST(ParallelEvalTest, NetEvaluatorBestIsBitIdentical) {
  Rng rng(11);
  const Dataset data = GenAntiCorrelated(400, 5, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(5, 777, &rng);
  const std::vector<int> sky = ComputeSkyline(data);
  const NetEvaluator serial(&data, &net, sky, /*threads=*/1);
  for (int threads : kThreadCounts) {
    const NetEvaluator parallel(&data, &net, sky, threads);
    for (size_t j = 0; j < net.size(); ++j) {
      ASSERT_EQ(serial.best(j), parallel.best(j))
          << "direction " << j << " at " << threads << " threads";
    }
  }
}

TEST(ParallelEvalTest, MhrIsBitIdentical) {
  Rng rng(13);
  const Dataset data = GenIndependent(500, 4, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(4, 1500, &rng);
  const std::vector<int> sky = ComputeSkyline(data);
  const std::vector<int> solution(sky.begin(),
                                  sky.begin() + std::min<size_t>(10, sky.size()));
  const NetEvaluator serial(&data, &net, sky, /*threads=*/1);
  const double want = serial.Mhr(solution);
  for (int threads : kThreadCounts) {
    const NetEvaluator parallel(&data, &net, sky, threads);
    ASSERT_EQ(want, parallel.Mhr(solution)) << threads << " threads";
  }
}

TEST(ParallelEvalTest, CacheCandidatesIsBitIdentical) {
  Rng rng(17);
  const Dataset data = GenIndependent(300, 3, &rng);
  const UtilityNet net = UtilityNet::SampleRandom(3, 600, &rng);
  const std::vector<int> sky = ComputeSkyline(data);
  NetEvaluator serial(&data, &net, sky, /*threads=*/1);
  serial.CacheCandidates(sky);
  for (int threads : kThreadCounts) {
    NetEvaluator parallel(&data, &net, sky, threads);
    parallel.CacheCandidates(sky);
    for (int row : sky) {
      const double* a = serial.cached_row(row);
      const double* b = parallel.cached_row(row);
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      for (size_t j = 0; j < net.size(); ++j) {
        ASSERT_EQ(a[j], b[j]) << "row " << row << " dir " << j << " at "
                              << threads << " threads";
      }
    }
  }
}

TEST(ParallelEvalTest, WitnessRegretsAreBitIdentical) {
  Rng rng(19);
  const Dataset data = GenAntiCorrelated(160, 4, &rng);
  const std::vector<int> sky = ComputeSkyline(data);
  const std::vector<int> solution(sky.begin(),
                                  sky.begin() + std::min<size_t>(6, sky.size()));
  const std::vector<double> want =
      AllWitnessRegretsLp(data, sky, solution, /*threads=*/1);
  for (int threads : kThreadCounts) {
    const std::vector<double> got =
        AllWitnessRegretsLp(data, sky, solution, threads);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], got[i]) << "witness " << i << " at " << threads
                                 << " threads";
    }
  }
}

TEST(ParallelEvalTest, MaxRegretWitnessIsBitIdentical) {
  Rng rng(23);
  const Dataset data = GenAntiCorrelated(160, 4, &rng);
  const std::vector<int> sky = ComputeSkyline(data);
  const std::vector<int> solution(sky.begin(),
                                  sky.begin() + std::min<size_t>(5, sky.size()));
  const RegretWitness want =
      MaxRegretWitnessLp(data, sky, solution, /*threads=*/1);
  for (int threads : kThreadCounts) {
    const RegretWitness got = MaxRegretWitnessLp(data, sky, solution, threads);
    ASSERT_EQ(want.row, got.row) << threads << " threads";
    ASSERT_EQ(want.regret, got.regret) << threads << " threads";
    ASSERT_EQ(want.utility, got.utility) << threads << " threads";
  }
}

TEST(ParallelEvalTest, MhrExactLpIsBitIdentical) {
  Rng rng(29);
  const Dataset data = GenIndependent(200, 3, &rng);
  const std::vector<int> sky = ComputeSkyline(data);
  const std::vector<int> solution(sky.begin(),
                                  sky.begin() + std::min<size_t>(4, sky.size()));
  const double want = MhrExactLp(data, sky, solution, /*threads=*/1);
  for (int threads : kThreadCounts) {
    ASSERT_EQ(want, MhrExactLp(data, sky, solution, threads))
        << threads << " threads";
  }
}

}  // namespace
}  // namespace fairhms
