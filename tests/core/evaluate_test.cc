#include "core/evaluate.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

TEST(EvaluateTest, AutoPicksExact2D) {
  Rng rng(1);
  const Dataset data = GenIndependent(50, 2, &rng);
  const auto sky = ComputeSkyline(data);
  const std::vector<int> s = {sky.front(), sky.back()};
  const double auto_val = EvaluateMhr(data, sky, s);
  const double exact = MhrExact2D(data, sky, s);
  EXPECT_DOUBLE_EQ(auto_val, exact);
}

TEST(EvaluateTest, AutoPicksLpForSmallSkylines) {
  Rng rng(2);
  const Dataset data = GenIndependent(60, 3, &rng);
  const auto sky = ComputeSkyline(data);
  const std::vector<int> s = {sky.front(), sky.back()};
  const double auto_val = EvaluateMhr(data, sky, s);
  const double lp = MhrExactLp(data, sky, s);
  EXPECT_NEAR(auto_val, lp, 1e-12);
}

TEST(EvaluateTest, NetMethodUpperBoundsExact) {
  Rng rng(3);
  const Dataset data = GenIndependent(80, 3, &rng);
  const auto sky = ComputeSkyline(data);
  std::vector<int> s;
  for (size_t i = 0; i < sky.size(); i += 4) s.push_back(sky[i]);
  EvalOptions net_opts;
  net_opts.method = MhrMethod::kNet;
  net_opts.net_size = 5000;
  const double net_val = EvaluateMhr(data, sky, s, net_opts);
  const double exact = MhrExactLp(data, sky, s);
  EXPECT_GE(net_val, exact - 1e-9);
  EXPECT_LE(net_val, exact + 0.08);
}

TEST(EvaluateTest, EmptyInputsGiveZero) {
  Rng rng(4);
  const Dataset data = GenIndependent(10, 2, &rng);
  EXPECT_DOUBLE_EQ(EvaluateMhr(data, {0, 1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateMhr(data, {}, {0}), 0.0);
}

TEST(EvaluateTest, ForcedMethodsConsistentOn2D) {
  Rng rng(5);
  const Dataset data = GenIndependent(40, 2, &rng);
  const auto sky = ComputeSkyline(data);
  std::vector<int> s = {sky[0]};
  if (sky.size() > 2) s.push_back(sky[sky.size() / 2]);
  EvalOptions lp_opts;
  lp_opts.method = MhrMethod::kExactLp;
  EvalOptions geo_opts;
  geo_opts.method = MhrMethod::kExact2D;
  EXPECT_NEAR(EvaluateMhr(data, sky, s, lp_opts),
              EvaluateMhr(data, sky, s, geo_opts), 1e-7);
}

TEST(EvaluateTest, DeterministicNetEvaluation) {
  Rng rng(6);
  const Dataset data = GenIndependent(50, 4, &rng);
  const auto sky = ComputeSkyline(data);
  std::vector<int> s = {sky[0], sky[1 % sky.size()]};
  EvalOptions opts;
  opts.method = MhrMethod::kNet;
  opts.net_size = 1000;
  EXPECT_DOUBLE_EQ(EvaluateMhr(data, sky, s, opts),
                   EvaluateMhr(data, sky, s, opts));
}

}  // namespace
}  // namespace fairhms
