#include "core/exact_evaluator.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/net_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::GridMhr2D;
using testing::MakeDataset;

TEST(Exact2DTest, FullSetIsOne) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.6, 0.6}});
  EXPECT_NEAR(MhrExact2D(data, {0, 1, 2}, {0, 1, 2}), 1.0, 1e-12);
}

TEST(Exact2DTest, MatchesDenseGridOnRandomData) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const Dataset data = GenIndependent(60, 2, &rng);
    std::vector<int> all(60);
    std::iota(all.begin(), all.end(), 0);
    std::vector<int> subset;
    for (int i = 0; i < 60; ++i) {
      if (rng.Bernoulli(0.15)) subset.push_back(i);
    }
    if (subset.empty()) subset.push_back(0);
    const double exact = MhrExact2D(data, all, subset);
    const double grid = GridMhr2D(data, subset, 5000);
    EXPECT_LE(exact, grid + 1e-9);
    EXPECT_NEAR(exact, grid, 2e-4) << "trial " << trial;
  }
}

TEST(ExactLpTest, AgreesWithGeometric2D) {
  // Cross-engine check: the LP evaluator and the envelope evaluator must
  // produce the same mhr on 2D data.
  Rng rng(37);
  for (int trial = 0; trial < 10; ++trial) {
    const Dataset data = GenIndependent(40, 2, &rng);
    const auto sky = ComputeSkyline(data);
    std::vector<int> subset;
    for (int i = 0; i < 40; i += 7) subset.push_back(i);
    const double geo = MhrExact2D(data, sky, subset);
    const double lp = MhrExactLp(data, sky, subset);
    EXPECT_NEAR(geo, lp, 1e-7) << "trial " << trial;
  }
}

TEST(ExactLpTest, NetMhrUpperBoundsExactMhr) {
  // Lemma 4.1: mhr(S) <= mhr(S|N) <= mhr(S) + error.
  Rng rng(41);
  const Dataset data = GenIndependent(80, 4, &rng);
  const auto sky = ComputeSkyline(data);
  const UtilityNet net = UtilityNet::SampleRandom(4, 3000, &rng);
  const NetEvaluator eval(&data, &net, sky);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int> subset;
    for (int i = 0; i < 80; ++i) {
      if (rng.Bernoulli(0.1)) subset.push_back(i);
    }
    if (subset.empty()) subset.push_back(trial);
    const double exact = MhrExactLp(data, sky, subset);
    const double net_mhr = eval.Mhr(subset);
    EXPECT_GE(net_mhr, exact - 1e-7);
    EXPECT_LE(net_mhr, exact + 0.1);  // 3000 samples in 4D: loose but sane.
  }
}

TEST(ExactLpTest, EmptySolutionIsZero) {
  const Dataset data = MakeDataset({{1, 1}});
  EXPECT_DOUBLE_EQ(MhrExactLp(data, {0}, {}), 0.0);
}

TEST(ExactLpTest, SolutionEqualsDatabaseIsOne) {
  Rng rng(43);
  const Dataset data = GenIndependent(20, 3, &rng);
  const auto sky = ComputeSkyline(data);
  EXPECT_NEAR(MhrExactLp(data, sky, sky), 1.0, 1e-9);
}

TEST(MaxRegretWitnessTest, EmptySolutionFullRegret) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}});
  const RegretWitness w = MaxRegretWitnessLp(data, {0, 1}, {});
  EXPECT_EQ(w.regret, 1.0);
  EXPECT_GE(w.row, 0);
}

TEST(MaxRegretWitnessTest, WitnessOutsideSolution) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.9, 0.9}});
  const RegretWitness w = MaxRegretWitnessLp(data, {0, 1, 2}, {2});
  // (0.9,0.9) covers well, but the axes still cause some regret; the witness
  // must be point 0 or 1 and regret = 0.1 (at the axis directions).
  EXPECT_TRUE(w.row == 0 || w.row == 1);
  EXPECT_NEAR(w.regret, 0.1, 1e-7);
}

TEST(MaxRegretWitnessTest, DominatedWitnessSkipped) {
  const Dataset data = MakeDataset({{1, 1}, {0.5, 0.5}});
  const RegretWitness w = MaxRegretWitnessLp(data, {0, 1}, {0});
  // Everything is weakly dominated by the selected (1,1): zero regret.
  EXPECT_DOUBLE_EQ(w.regret, 0.0);
}

TEST(MaxRegretWitnessTest, UtilityVectorAttainsRegret) {
  Rng rng(47);
  const Dataset data = GenIndependent(30, 3, &rng);
  const auto sky = ComputeSkyline(data);
  const std::vector<int> solution = {0, 1, 2};
  const RegretWitness w = MaxRegretWitnessLp(data, sky, solution);
  if (w.row >= 0 && w.regret > 0) {
    ASSERT_EQ(w.utility.size(), 3u);
    // Verify the certificate: hr at u equals 1 - regret w.r.t. witness.
    double uw = 0, best_s = 0;
    for (int j = 0; j < 3; ++j) {
      uw += w.utility[static_cast<size_t>(j)] * data.at(static_cast<size_t>(w.row), j);
    }
    for (int s : solution) {
      double us = 0;
      for (int j = 0; j < 3; ++j) {
        us += w.utility[static_cast<size_t>(j)] * data.at(static_cast<size_t>(s), j);
      }
      best_s = std::max(best_s, us);
    }
    EXPECT_NEAR(uw, 1.0, 1e-7);            // Normalized witness score.
    EXPECT_LE(best_s, 1.0 - w.regret + 1e-7);
  }
}

TEST(AllWitnessRegretsTest, AlignsWithMaxWitness) {
  Rng rng(53);
  const Dataset data = GenIndependent(25, 3, &rng);
  const auto sky = ComputeSkyline(data);
  const std::vector<int> solution = {sky[0]};
  const auto regrets = AllWitnessRegretsLp(data, sky, solution);
  ASSERT_EQ(regrets.size(), sky.size());
  const double max_all = *std::max_element(regrets.begin(), regrets.end());
  const RegretWitness w = MaxRegretWitnessLp(data, sky, solution);
  EXPECT_NEAR(max_all, w.regret, 1e-9);
}

TEST(AllWitnessRegretsTest, MembersOfSolutionHaveZero) {
  Rng rng(59);
  const Dataset data = GenIndependent(15, 2, &rng);
  const auto sky = ComputeSkyline(data);
  const std::vector<int> solution = {sky[0], sky.back()};
  const auto regrets = AllWitnessRegretsLp(data, sky, solution);
  for (size_t i = 0; i < sky.size(); ++i) {
    if (sky[i] == solution[0] || sky[i] == solution[1]) {
      EXPECT_DOUBLE_EQ(regrets[i], 0.0);
    }
  }
}

TEST(AllWitnessRegretsTest, EmptySolutionAllOnes) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}});
  const auto regrets = AllWitnessRegretsLp(data, {0, 1}, {});
  EXPECT_EQ(regrets, (std::vector<double>{1.0, 1.0}));
}

}  // namespace
}  // namespace fairhms
