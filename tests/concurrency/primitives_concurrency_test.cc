// Concurrency regression tests for the library's shared mutable
// primitives. Each test races the documented-thread-safe entry points of
// one component against each other and then checks an invariant that only
// holds if the internal locking is right. They are sized for
// ThreadSanitizer (the clang-tsan CI leg runs them with every
// interleaving-detection pass enabled), but the invariants are checked in
// every build.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/metrics.h"
#include "api/protocol.h"
#include "common/random.h"
#include "core/artifact_cache.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "plan/cost_model.h"

namespace fairhms {
namespace {

/// Readers hammer every lookup + stats path of two arbiter-managed caches
/// while each thread also inserts fresh nets (which charge the arbiter
/// after the cache lock is released). Invariant: once the threads join,
/// the bytes the caches report and the bytes the arbiter has charged for
/// them agree exactly — a lost update or torn read in the accounting
/// handoff breaks the equality.
TEST(CacheArbiterConcurrencyTest, AccountingStaysConsistentUnderRaces) {
  Rng data_rng(11);
  Dataset data = GenIndependent(120, 3, &data_rng).NormalizedMinMax();
  Grouping grouping = GroupBySumRank(data, 3);

  CacheArbiter arbiter(/*budget_bytes=*/0);  // Unlimited: never evicts.
  ArtifactCache cache_a;
  ArtifactCache cache_b;
  arbiter.Register(&cache_a, "a", [] {});
  arbiter.Register(&cache_b, "b", [] {});

  constexpr int kThreads = 4;
  constexpr int kIters = 40;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ArtifactCache* mine = t % 2 == 0 ? &cache_a : &cache_b;
      ArtifactCache* other = t % 2 == 0 ? &cache_b : &cache_a;
      for (int i = 0; i < kIters; ++i) {
        // Fresh rng state per (thread, iter): every Net call is a miss
        // that inserts a new entry and charges the arbiter.
        Rng rng(static_cast<uint64_t>(t) * 1000 + i + 1);
        (void)mine->Net(3, 16 + static_cast<size_t>(t), &rng);
        (void)mine->Skyline(data);
        (void)other->GroupSkylines(data, grouping);
        (void)other->FairPool(data, grouping);
        mine->AccountProjection(i % 2 == 0, 64);
        arbiter.Touch(mine);
        (void)mine->stats();
        (void)arbiter.total_bytes();
        (void)arbiter.Ledger();
        (void)arbiter.ToString();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const uint64_t cache_bytes =
      cache_a.stats().TotalBytes() + cache_b.stats().TotalBytes();
  EXPECT_EQ(cache_bytes, arbiter.total_bytes());
  EXPECT_EQ(arbiter.evictions(), 0u);

  arbiter.Unregister(&cache_a);
  arbiter.Unregister(&cache_b);
  EXPECT_EQ(arbiter.total_bytes(), 0u);
}

/// Recorders and snapshotters race; afterwards the exact counters
/// (count / errors / total_ms are exact forever, only percentiles window)
/// must equal what was recorded, and no snapshot may ever run backwards.
TEST(OpMetricsConcurrencyTest, RecordAndSnapshotRace) {
  OpMetrics metrics;
  constexpr int kRecorders = 4;
  constexpr int kPerThread = 2000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> snapshotters;
  for (int s = 0; s < 2; ++s) {
    snapshotters.emplace_back([&] {
      uint64_t last_total = 0;
      while (!stop.load()) {
        const OpMetrics::Snapshot snap = metrics.snapshot();
        const uint64_t total = snap.served + snap.failed;
        EXPECT_GE(total, last_total);  // Counters never run backwards.
        last_total = total;
      }
    });
  }

  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&, t] {
      const ProtocolOp op =
          t % 2 == 0 ? ProtocolOp::kQuery : ProtocolOp::kStats;
      for (int i = 0; i < kPerThread; ++i) {
        metrics.Record(op, /*ok=*/i % 10 != 0, /*ms=*/0.25);
      }
    });
  }
  for (std::thread& thread : recorders) thread.join();
  stop.store(true);
  for (std::thread& thread : snapshotters) thread.join();

  const OpMetrics::Snapshot snap = metrics.snapshot();
  const uint64_t expected_total =
      static_cast<uint64_t>(kRecorders) * kPerThread;
  EXPECT_EQ(snap.served + snap.failed, expected_total);
  EXPECT_EQ(snap.failed, expected_total / 10);
}

/// Concurrent Observe / Predict / Serialize; afterwards the observation
/// count is exact and the serialized form parses back losslessly.
TEST(CostModelConcurrencyTest, ObservePredictSerializeRace) {
  CostModel model;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string algorithm = t % 2 == 0 ? "intcov" : "bigreedy";
      for (int i = 0; i < kPerThread; ++i) {
        const CostSignature sig = CostSignature::Make(
            /*d=*/3, /*n=*/1000 + static_cast<uint64_t>(i), /*k=*/10,
            /*num_groups=*/3, /*bounds_tightness=*/0.5, i % 2 == 0);
        model.Observe(algorithm, sig, /*solve_ms=*/1.5,
                      /*happiness_ratio=*/0.9);
        (void)model.Predict(algorithm, sig);
        if (i % 50 == 0) (void)model.Serialize();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(model.observations(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  CostModel restored;
  ASSERT_TRUE(restored.Restore(model.Serialize()).ok());
  EXPECT_EQ(restored.Serialize(), model.Serialize());
}

}  // namespace
}  // namespace fairhms
