// Races the SIMD kernel layer's dispatch switch against live evaluation.
//
// The dispatch state is one atomic table pointer; SetMode may be called at
// any time, and because every dispatch level is bitwise identical, a query
// that straddles a mode flip must still produce exactly the reference
// answer. Workers hammer the tiled kernels through a shared NetEvaluator
// (including its internal thread-pool fan-out) while a flipper thread
// toggles off/auto as fast as it can; any torn dispatch read, missed
// fence, or cross-level numeric divergence shows up as a bit mismatch.

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/simd.h"
#include "core/net_evaluator.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "utility/utility_net.h"

namespace fairhms {
namespace {

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(KernelConcurrencyTest, ModeFlipsNeverChangeResults) {
  Rng rng(19);
  const Dataset data = GenIndependent(200, 6, &rng).NormalizedMinMax();
  const UtilityNet net = UtilityNet::SampleRandom(6, 700, &rng);
  std::vector<int> all(200);
  for (int i = 0; i < 200; ++i) all[i] = i;
  // threads=3: evaluator queries fan out over the pool while modes flip,
  // so tile workers themselves can observe different dispatch tables
  // within one logical query.
  const NetEvaluator eval(&data, &net, all, /*threads=*/3);
  const std::vector<int> probe = {4, 31, 77, 102, 155, 199};

  simd::SetMode(simd::SimdMode::kOff);
  const double ref_mhr = eval.Mhr(probe);
  std::vector<double> ref_row(net.size());
  eval.PointHappinessRow(probe[0], ref_row.data());
  TruncatedMhrState ref_state(&eval);
  ref_state.Add(probe[0]);
  const double ref_gain = ref_state.MarginalGain(probe[1], 0.9);
  simd::SetMode(simd::SimdMode::kAuto);

  std::atomic<int> mismatches{0};
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    bool off = false;
    while (!stop.load(std::memory_order_relaxed)) {
      simd::SetMode(off ? simd::SimdMode::kOff : simd::SimdMode::kAuto);
      off = !off;
      std::this_thread::yield();
    }
    simd::SetMode(simd::SimdMode::kAuto);
  });

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      std::vector<double> row(net.size());
      TruncatedMhrState state(&eval);
      state.Add(probe[0]);
      for (int iter = 0; iter < 40; ++iter) {
        if (!BitEq(eval.Mhr(probe), ref_mhr)) ++mismatches;
        eval.PointHappinessRow(probe[static_cast<size_t>(w) % probe.size()],
                               row.data());
        if (w % static_cast<int>(probe.size()) == 0) {
          for (size_t j = 0; j < net.size(); ++j) {
            if (!BitEq(row[j], ref_row[j])) {
              ++mismatches;
              break;
            }
          }
        }
        if (!BitEq(state.MarginalGain(probe[1], 0.9), ref_gain)) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  stop.store(true);
  flipper.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(simd::Mode(), simd::SimdMode::kAuto);
}

}  // namespace
}  // namespace fairhms
