// In-process Server integration tests: several concurrent TCP clients run
// a mixed query/update workload and the merged response log — ordered by
// the envelope's "seq" linearization stamp — must replay bit-identically
// (timing fields normalized) through a fresh single-threaded
// ProtocolService over an identically bootstrapped catalog. Plus: graceful
// drain stops accepting but answers everything admitted, SnapshotReload
// keeps query results stable across a live reload, and per-connection rate
// limiting surfaces as ResourceExhausted error responses.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/catalog.h"
#include "api/protocol.h"
#include "api/server.h"
#include "api/service.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "data/grouping.h"

namespace fairhms {
namespace {

/// The shared bootstrap: both the served catalog and the replay catalog
/// are built exactly like this, so replayed responses can be compared
/// byte-for-byte.
void Bootstrap(DatasetCatalog* catalog) {
  {
    Rng rng(77);
    Dataset data = GenIndependent(80, 3, &rng).NormalizedMinMax();
    Grouping grouping = GroupBySumRank(data, 2);
    ASSERT_TRUE(
        catalog->Register("default", std::move(data), std::move(grouping))
            .ok());
  }
  {
    Rng rng(88);
    Dataset data = GenIndependent(60, 3, &rng).NormalizedMinMax();
    Grouping grouping = GroupBySumRank(data, 3);
    ASSERT_TRUE(
        catalog->Register("other", std::move(data), std::move(grouping))
            .ok());
  }
}

ServiceOptions ServiceOpts() {
  ServiceOptions opts;
  opts.default_seed = 7;
  opts.default_threads = 1;
  opts.envelope.version = 1;
  opts.envelope.emit_seq = true;
  return opts;
}

/// Blocking loopback TCP client: connects, writes every line, then reads
/// until `expect` newline-terminated responses arrived.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      ADD_FAILURE() << "socket: " << strerror(errno);
      failed_ = true;
      return;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ADD_FAILURE() << "connect: " << strerror(errno);
      failed_ = true;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool ok() const { return fd_ >= 0 && !failed_; }

  void Send(const std::vector<std::string>& lines) {
    std::string payload;
    for (const std::string& line : lines) payload += line + "\n";
    size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n =
          ::send(fd_, payload.data() + off, payload.size() - off, 0);
      if (n <= 0) {
        failed_ = true;
        return;
      }
      off += static_cast<size_t>(n);
    }
  }

  std::vector<std::string> Receive(size_t expect) {
    std::vector<std::string> lines;
    std::string buffer;
    char chunk[4096];
    while (lines.size() < expect) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        failed_ = true;
        break;
      }
      buffer.append(chunk, static_cast<size_t>(n));
      size_t pos;
      while ((pos = buffer.find('\n')) != std::string::npos) {
        lines.push_back(buffer.substr(0, pos));
        buffer.erase(0, pos + 1);
      }
    }
    return lines;
  }

 private:
  int fd_ = -1;
  bool failed_ = false;
};

std::string NormalizeTimings(std::string s) {
  // The warm_start telemetry flag is stripped like the timings: whether a
  // solve found a warm memo hint depends on scheduling (a concurrent
  // solve may or may not have published its memo yet), while the seq-
  // order replay is single-threaded and always sees the memo — the
  // advisory hint never changes the solution bytes, only this flag.
  static const std::string kWarmStart = ", \"warm_start\": true";
  for (size_t pos; (pos = s.find(kWarmStart)) != std::string::npos;) {
    s.erase(pos, kWarmStart.size());
  }
  for (const char* key : {"solve_ms", "total_ms"}) {
    const std::string needle = std::string("\"") + key + "\": ";
    size_t pos = 0;
    while ((pos = s.find(needle, pos)) != std::string::npos) {
      const size_t start = pos + needle.size();
      size_t end = start;
      while (end < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[end])) ||
              std::strchr(".eE+-", s[end]) != nullptr)) {
        ++end;
      }
      s.replace(start, end - start, "T");
      pos = start + 1;
    }
  }
  return s;
}

/// Extracts an integer envelope field (`"seq": 12`), or -1 when absent.
int64_t IntField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(line.c_str() + pos + needle.size(), nullptr, 10);
}

/// The mixed per-client workload. Deletes use a distinct row per client so
/// every line succeeds regardless of interleaving; inserts carry
/// client-specific coordinates so a routing mix-up cannot cancel out.
std::vector<std::string> ClientBattery(int c) {
  std::vector<std::string> lines;
  for (int i = 0; i < 4; ++i) {
    lines.push_back(StrFormat(
        "{\"id\": \"c%d-q%d\", \"algorithm\": \"intcov\", \"k\": %d, "
        "\"alpha\": 0.2, \"threads\": 1, \"dataset\": \"%s\"}",
        c, i, 4 + i % 2, i % 2 == 0 ? "default" : "other"));
  }
  lines.push_back(StrFormat(
      "{\"id\": \"c%d-big\", \"algorithm\": \"bigreedy\", \"k\": 4, "
      "\"threads\": 1, \"params\": {\"net_size\": 64}}",
      c));
  lines.push_back(StrFormat(
      "{\"id\": \"c%d-ins\", \"op\": \"insert\", \"point\": "
      "[0.9, 0.%d, 0.5], \"group\": 0}",
      c, c + 1));
  lines.push_back(StrFormat(
      "{\"id\": \"c%d-del\", \"op\": \"delete\", \"dataset\": \"other\", "
      "\"rows\": [%d]}",
      c, c));
  lines.push_back(StrFormat("{\"id\": \"c%d-ls\", \"op\": \"list\"}", c));
  return lines;
}

TEST(ServeConcurrentTest, MergedLogReplaysBitIdentically) {
  DatasetCatalog catalog;
  Bootstrap(&catalog);
  ProtocolService service(&catalog, ServiceOpts());
  ServerOptions server_opts;
  server_opts.tcp_port = 0;  // Ephemeral.
  server_opts.workers = 4;
  Server server(&service, server_opts);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.tcp_port();
  ASSERT_GT(port, 0);

  constexpr int kClients = 6;
  std::vector<std::vector<std::string>> requests(kClients);
  std::vector<std::vector<std::string>> responses(kClients);
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      requests[static_cast<size_t>(c)] = ClientBattery(c);
      threads.emplace_back([&, c] {
        Client client(port);
        const auto& lines = requests[static_cast<size_t>(c)];
        client.Send(lines);
        responses[static_cast<size_t>(c)] = client.Receive(lines.size());
        EXPECT_TRUE(client.ok()) << "client " << c;
      });
    }
    for (std::thread& t : threads) t.join();
  }
  server.Drain();

  // Every line answered, every answer ok, every answer stamped with seq.
  std::map<std::string, std::string> by_id;  // "c0-q1" -> response line
  std::vector<std::pair<int64_t, size_t>> order;  // (seq, index into flat)
  std::vector<std::pair<std::string, std::string>> flat;  // (req, resp)
  for (int c = 0; c < kClients; ++c) {
    const auto& reqs = requests[static_cast<size_t>(c)];
    const auto& resps = responses[static_cast<size_t>(c)];
    ASSERT_EQ(resps.size(), reqs.size()) << "client " << c;
    for (const std::string& resp : resps) {
      EXPECT_NE(resp.find("\"ok\": true"), std::string::npos) << resp;
      const int64_t seq = IntField(resp, "seq");
      ASSERT_GT(seq, 0) << resp;
      // Match the response to its request by the unique id.
      const size_t id_start = resp.find("\"id\": \"") + 7;
      const std::string id =
          resp.substr(id_start, resp.find('"', id_start) - id_start);
      ASSERT_EQ(by_id.count(id), 0u) << "duplicate id " << id;
      by_id[id] = resp;
      const std::string* req = nullptr;
      for (const std::string& line : reqs) {
        if (line.find("\"id\": \"" + id + "\"") != std::string::npos) {
          req = &line;
        }
      }
      ASSERT_NE(req, nullptr) << id;
      order.emplace_back(seq, flat.size());
      flat.emplace_back(*req, resp);
    }
  }
  // Seq numbers are a contiguous 1..M linearization.
  std::sort(order.begin(), order.end());
  ASSERT_EQ(order.size(), flat.size());
  for (size_t i = 0; i < order.size(); ++i) {
    ASSERT_EQ(order[i].first, static_cast<int64_t>(i + 1))
        << "seq numbers must be contiguous";
  }
  EXPECT_EQ(service.served(), order.size());
  EXPECT_EQ(service.failed(), 0u);

  // Serial replay in seq order through a fresh service must reproduce
  // every response byte-for-byte (timings normalized).
  DatasetCatalog replay_catalog;
  Bootstrap(&replay_catalog);
  ProtocolService replay(&replay_catalog, ServiceOpts());
  for (size_t i = 0; i < order.size(); ++i) {
    const auto& [req, resp] = flat[order[i].second];
    const std::string replayed = replay.HandleLine(req, i + 1);
    EXPECT_EQ(NormalizeTimings(replayed), NormalizeTimings(resp))
        << "divergence at seq " << i + 1 << " for request " << req;
  }
}

TEST(ServeConcurrentTest, DrainAnswersAdmittedWorkAndStopsAccepting) {
  DatasetCatalog catalog;
  Bootstrap(&catalog);
  ProtocolService service(&catalog, ServiceOpts());
  ServerOptions server_opts;
  server_opts.tcp_port = 0;
  server_opts.workers = 2;
  Server server(&service, server_opts);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.tcp_port();

  Client client(port);
  std::vector<std::string> lines;
  for (int i = 0; i < 10; ++i) {
    lines.push_back(StrFormat(
        "{\"id\": %d, \"algorithm\": \"intcov\", \"k\": 4, \"threads\": 1}",
        i));
  }
  client.Send(lines);
  const std::vector<std::string> resps = client.Receive(lines.size());
  ASSERT_EQ(resps.size(), lines.size());
  server.Drain();
  server.Drain();  // Idempotent.
  EXPECT_EQ(service.served(), lines.size());

  // The listener is gone: a fresh connect must fail.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_NE(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ::close(fd);
}

TEST(ServeConcurrentTest, SnapshotReloadKeepsQueryResultsStable) {
  DatasetCatalog catalog;
  Bootstrap(&catalog);
  ProtocolService service(&catalog, ServiceOpts());
  ServerOptions server_opts;
  server_opts.tcp_port = 0;
  Server server(&service, server_opts);
  ASSERT_TRUE(server.Start().ok());

  const std::string query =
      "{\"id\": \"q\", \"algorithm\": \"intcov\", \"k\": 5, "
      "\"threads\": 1}";
  auto rows_of = [](const std::string& resp) {
    const size_t pos = resp.find("\"rows\": [");
    EXPECT_NE(pos, std::string::npos) << resp;
    return resp.substr(pos, resp.find(']', pos) + 1 - pos);
  };

  Client before(server.tcp_port());
  before.Send({query});
  const std::vector<std::string> pre = before.Receive(1);
  ASSERT_EQ(pre.size(), 1u);
  ASSERT_NE(pre[0].find("\"ok\": true"), std::string::npos) << pre[0];

  char dir_template[] = "serve_reload_XXXXXX";
  char* dir = mkdtemp(dir_template);
  ASSERT_NE(dir, nullptr);
  ASSERT_TRUE(service.SnapshotReload(dir).ok());

  Client after(server.tcp_port());
  after.Send({query});
  const std::vector<std::string> post = after.Receive(1);
  ASSERT_EQ(post.size(), 1u);
  ASSERT_NE(post[0].find("\"ok\": true"), std::string::npos) << post[0];
  EXPECT_EQ(rows_of(pre[0]), rows_of(post[0]));

  server.Drain();
  for (const char* name : {"default.snap", "other.snap"}) {
    std::remove((std::string(dir) + "/" + name).c_str());
  }
  ::rmdir(dir);
}

TEST(ServeConcurrentTest, RateLimitRejectsWithResourceExhausted) {
  DatasetCatalog catalog;
  Bootstrap(&catalog);
  ProtocolService service(&catalog, ServiceOpts());
  ServerOptions server_opts;
  server_opts.tcp_port = 0;
  server_opts.rate_limit_per_sec = 0.5;
  server_opts.rate_limit_burst = 2.0;
  Server server(&service, server_opts);
  ASSERT_TRUE(server.Start().ok());

  Client client(server.tcp_port());
  std::vector<std::string> lines;
  for (int i = 0; i < 30; ++i) {
    lines.push_back(StrFormat("{\"id\": %d, \"op\": \"list\"}", i));
  }
  client.Send(lines);
  const std::vector<std::string> resps = client.Receive(lines.size());
  ASSERT_EQ(resps.size(), lines.size());
  size_t ok = 0, limited = 0;
  for (const std::string& resp : resps) {
    if (resp.find("\"ok\": true") != std::string::npos) {
      ++ok;
    } else {
      EXPECT_NE(resp.find("\"error\": {\"code\": \"ResourceExhausted\""),
                std::string::npos)
          << resp;
      ++limited;
    }
  }
  // The bucket starts at the burst (2 tokens) and refills at 0.5/s: the
  // burst is always admitted, and 30 back-to-back lines cannot all be.
  EXPECT_GE(ok, 2u);
  EXPECT_GE(limited, 1u);
  EXPECT_EQ(server.rejected(), limited);
  server.Drain();
}

}  // namespace
}  // namespace fairhms
