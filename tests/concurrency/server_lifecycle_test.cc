// Server lifecycle races: clients keep pushing lines while the server
// drains, and servers are torn down immediately after their last reader
// exits. Regression coverage for the detached-reader shutdown race (the
// reader's final readers_cv_ notify must happen under conns_mu_, because
// the Server may be destroyed the instant Drain observes
// active_readers_ == 0) — ThreadSanitizer catches a reintroduction in the
// clang-tsan CI leg, where this suite runs serially with the machine to
// itself.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/catalog.h"
#include "api/server.h"
#include "api/service.h"
#include "common/random.h"
#include "common/string_util.h"
#include "data/generators.h"
#include "data/grouping.h"

namespace fairhms {
namespace {

ServiceOptions ServiceOpts() {
  ServiceOptions opts;
  opts.default_seed = 7;
  opts.default_threads = 1;
  opts.envelope.version = 1;
  opts.envelope.emit_seq = true;
  return opts;
}

void Bootstrap(DatasetCatalog* catalog) {
  Rng rng(21);
  Dataset data = GenIndependent(60, 3, &rng).NormalizedMinMax();
  Grouping grouping = GroupBySumRank(data, 2);
  ASSERT_TRUE(
      catalog->Register("default", std::move(data), std::move(grouping))
          .ok());
}

/// Connects to the loopback port; -1 on failure (e.g. the listener is
/// already gone because Drain won the race — that is a valid outcome).
int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Clients flood cheap stats lines while the main thread drains the
/// server mid-stream. Every line the server admitted must still be
/// answered (drain never drops accepted work); lines that lost the race
/// get an explicit refusal or a closed socket, never a hang. The
/// interesting checking happens in TSan builds: reader teardown, worker
/// drain and admission all overlap here.
TEST(ServerLifecycleTest, DrainRacesAdmission) {
  DatasetCatalog catalog;
  Bootstrap(&catalog);
  ProtocolService service(&catalog, ServiceOpts());
  ServerOptions opts;
  opts.tcp_port = 0;  // Ephemeral.
  opts.workers = 2;
  auto server = std::make_unique<Server>(&service, opts);
  ASSERT_TRUE(server->Start().ok());
  const int port = server->tcp_port();
  ASSERT_GT(port, 0);

  constexpr int kClients = 4;
  std::atomic<int> responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = ConnectLoopback(port);
      if (fd < 0) return;
      // Writer half: push lines until the server hangs up on us.
      std::thread writer([&, fd] {
        for (int i = 0; i < 400; ++i) {
          const std::string line =
              StrFormat("{\"op\": \"stats\", \"id\": \"c%d-%d\"}\n", c, i);
          if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) <= 0) break;
        }
      });
      // Reader half: count newline-terminated responses until EOF.
      std::string buffer;
      char chunk[4096];
      for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        buffer.append(chunk, static_cast<size_t>(n));
        size_t pos;
        while ((pos = buffer.find('\n')) != std::string::npos) {
          ++responses;
          buffer.erase(0, pos + 1);
        }
      }
      writer.join();
      ::close(fd);
    });
  }

  // Drain mid-flood, then destroy the server the moment Drain returns —
  // the shutdown-race window the detached readers must survive.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Drain();
  server.reset();

  for (std::thread& client : clients) client.join();
  // Liveness is the assertion: every client unblocked and the process got
  // here. At least one response normally lands, but a maximally fast
  // drain may refuse everything, so only sanity-check the counter.
  EXPECT_GE(responses.load(), 0);
}

/// Tight create/serve/destroy cycles: each round a fresh server takes a
/// few lines from one client and is destroyed immediately after Drain.
/// Catches use-after-free of server members (condvars, mutexes, queues)
/// by threads that outlive the round.
TEST(ServerLifecycleTest, RapidRestartCycles) {
  DatasetCatalog catalog;
  Bootstrap(&catalog);
  ProtocolService service(&catalog, ServiceOpts());

  for (int round = 0; round < 10; ++round) {
    ServerOptions opts;
    opts.tcp_port = 0;
    opts.workers = 1;
    auto server = std::make_unique<Server>(&service, opts);
    ASSERT_TRUE(server->Start().ok());
    const int port = server->tcp_port();

    std::thread client([&, port] {
      const int fd = ConnectLoopback(port);
      if (fd < 0) return;
      const std::string line = "{\"op\": \"list\", \"id\": 1}\n";
      (void)!::send(fd, line.data(), line.size(), MSG_NOSIGNAL);
      char chunk[1024];
      (void)::recv(fd, chunk, sizeof(chunk), 0);
      ::close(fd);
    });
    // No sleep: some rounds drain before the client connects, some
    // mid-request — both must be clean.
    server->Drain();
    server.reset();
    client.join();
  }
}

}  // namespace
}  // namespace fairhms
