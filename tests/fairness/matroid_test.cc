#include "fairness/matroid.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeGrouping;

FairnessMatroid MakeMatroid(int k, std::vector<int> lower,
                            std::vector<int> upper) {
  auto b = GroupBounds::Explicit(k, std::move(lower), std::move(upper));
  EXPECT_TRUE(b.ok());
  return FairnessMatroid(*b);
}

TEST(FairnessMatroidTest, EmptySetIndependent) {
  const FairnessMatroid m = MakeMatroid(3, {1, 1}, {2, 2});
  EXPECT_TRUE(m.IsIndependent({0, 0}));
}

TEST(FairnessMatroidTest, UpperBoundEnforced) {
  const FairnessMatroid m = MakeMatroid(4, {0, 0}, {2, 2});
  EXPECT_TRUE(m.IsIndependent({2, 2}));
  EXPECT_FALSE(m.IsIndependent({3, 0}));
}

TEST(FairnessMatroidTest, LowerBoundsReserveRoom) {
  // k=3, l=(0,2): picking 2 from group 0 leaves no room for group 1's
  // reserved 2 slots: max(2,0)+max(0,2) = 4 > 3.
  const FairnessMatroid m = MakeMatroid(3, {0, 2}, {3, 3});
  EXPECT_TRUE(m.IsIndependent({1, 0}));
  EXPECT_FALSE(m.IsIndependent({2, 0}));
  EXPECT_TRUE(m.IsIndependent({1, 2}));
}

TEST(FairnessMatroidTest, CanAddConsistentWithIsIndependent) {
  const FairnessMatroid m = MakeMatroid(3, {0, 2}, {3, 3});
  std::vector<int> counts = {1, 0};
  EXPECT_FALSE(m.CanAdd(counts, 0));
  EXPECT_TRUE(m.CanAdd(counts, 1));
}

TEST(FairnessMatroidTest, FairSizeKSetsAreIndependent) {
  // Every count vector with l <= counts <= h and sum = k is independent.
  const FairnessMatroid m = MakeMatroid(5, {1, 2}, {3, 4});
  for (int a = 1; a <= 3; ++a) {
    const int b = 5 - a;
    if (b >= 2 && b <= 4) {
      EXPECT_TRUE(m.IsIndependent({a, b})) << a << "," << b;
    }
  }
}

// Matroid axioms verified on random instances by exhaustive enumeration of
// count vectors (the independence system is defined purely on counts).
TEST(FairnessMatroidTest, DownwardClosureProperty) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const int c_num = 2 + static_cast<int>(rng.UniformInt(2));
    const int k = 3 + static_cast<int>(rng.UniformInt(5));
    std::vector<int> lower(static_cast<size_t>(c_num)), upper(static_cast<size_t>(c_num));
    int sum_l = 0;
    for (int c = 0; c < c_num; ++c) {
      lower[static_cast<size_t>(c)] = static_cast<int>(rng.UniformInt(2));
      sum_l += lower[static_cast<size_t>(c)];
      upper[static_cast<size_t>(c)] =
          lower[static_cast<size_t>(c)] + static_cast<int>(rng.UniformInt(4));
    }
    if (sum_l > k) continue;
    long long sum_h = 0;
    for (int c = 0; c < c_num; ++c) sum_h += upper[static_cast<size_t>(c)];
    if (sum_h < k) continue;
    const FairnessMatroid m = MakeMatroid(k, lower, upper);

    // Enumerate all count vectors up to upper bounds.
    std::vector<int> counts(static_cast<size_t>(c_num), 0);
    std::function<void(int)> rec = [&](int c) {
      if (c == c_num) {
        if (!m.IsIndependent(counts)) return;
        // Every coordinate-wise decrement stays independent.
        for (int i = 0; i < c_num; ++i) {
          if (counts[static_cast<size_t>(i)] > 0) {
            --counts[static_cast<size_t>(i)];
            EXPECT_TRUE(m.IsIndependent(counts));
            ++counts[static_cast<size_t>(i)];
          }
        }
        return;
      }
      for (int v = 0; v <= upper[static_cast<size_t>(c)] + 1; ++v) {
        counts[static_cast<size_t>(c)] = v;
        rec(c + 1);
      }
      counts[static_cast<size_t>(c)] = 0;
    };
    rec(0);
  }
}

TEST(FairnessMatroidTest, ExchangePropertyOnCounts) {
  // If |S2| > |S1| and both independent, some group with more elements in S2
  // can donate one to S1.
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int c_num = 2 + static_cast<int>(rng.UniformInt(2));
    const int k = 4 + static_cast<int>(rng.UniformInt(4));
    std::vector<int> lower(static_cast<size_t>(c_num), 0), upper(static_cast<size_t>(c_num));
    for (int c = 0; c < c_num; ++c) {
      lower[static_cast<size_t>(c)] = static_cast<int>(rng.UniformInt(2));
      upper[static_cast<size_t>(c)] =
          lower[static_cast<size_t>(c)] + 1 + static_cast<int>(rng.UniformInt(3));
    }
    long long sl = std::accumulate(lower.begin(), lower.end(), 0LL);
    long long sh = std::accumulate(upper.begin(), upper.end(), 0LL);
    if (sl > k || sh < k) continue;
    const FairnessMatroid m = MakeMatroid(k, lower, upper);

    // Sample random independent pairs.
    for (int probe = 0; probe < 200; ++probe) {
      std::vector<int> s1(static_cast<size_t>(c_num)), s2(static_cast<size_t>(c_num));
      for (int c = 0; c < c_num; ++c) {
        s1[static_cast<size_t>(c)] = static_cast<int>(rng.UniformInt(
            static_cast<uint64_t>(upper[static_cast<size_t>(c)] + 1)));
        s2[static_cast<size_t>(c)] = static_cast<int>(rng.UniformInt(
            static_cast<uint64_t>(upper[static_cast<size_t>(c)] + 1)));
      }
      if (!m.IsIndependent(s1) || !m.IsIndependent(s2)) continue;
      const int n1 = std::accumulate(s1.begin(), s1.end(), 0);
      const int n2 = std::accumulate(s2.begin(), s2.end(), 0);
      if (n2 <= n1) continue;
      bool can_exchange = false;
      for (int c = 0; c < c_num; ++c) {
        if (s2[static_cast<size_t>(c)] > s1[static_cast<size_t>(c)] &&
            m.CanAdd(s1, c)) {
          can_exchange = true;
          break;
        }
      }
      EXPECT_TRUE(can_exchange)
          << "exchange axiom violated at trial " << trial;
    }
  }
}

TEST(FairSelectionTest, TracksCountsAndMaximality) {
  const Grouping g = MakeGrouping({0, 0, 1, 1}, 2);
  auto b = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(b.ok());
  const FairnessMatroid m(*b);
  FairSelection sel(&m, &g);
  EXPECT_FALSE(sel.IsMaximal());
  EXPECT_TRUE(sel.CanAdd(0));
  sel.Add(0);
  EXPECT_FALSE(sel.CanAdd(1));  // Group 0 is full (h=1).
  EXPECT_TRUE(sel.CanAdd(2));
  sel.Add(2);
  EXPECT_TRUE(sel.IsMaximal());
  EXPECT_EQ(sel.size(), 2);
  EXPECT_EQ(sel.counts(), (std::vector<int>{1, 1}));
}

TEST(FairSelectionTest, MaximalSelectionsHaveSizeK) {
  // Greedy-fill random orders; maximal independent sets in the fairness
  // matroid always have exactly k elements.
  Rng rng(13);
  const int n = 30;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> assign(n);
    const int c_num = 3;
    for (auto& a : assign) a = static_cast<int>(rng.UniformInt(c_num));
    const Grouping g = MakeGrouping(assign, c_num);
    const auto counts = g.Counts();
    if (*std::min_element(counts.begin(), counts.end()) < 2) continue;
    auto b = GroupBounds::Explicit(6, {1, 1, 1}, {4, 4, 4});
    ASSERT_TRUE(b.ok());
    const FairnessMatroid m(*b);
    FairSelection sel(&m, &g);
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.Shuffle(&order);
    for (int r : order) {
      if (sel.CanAdd(r)) sel.Add(r);
    }
    EXPECT_TRUE(sel.IsMaximal());
    EXPECT_EQ(sel.size(), 6);
    // And the result satisfies the fairness constraint.
    for (int c = 0; c < c_num; ++c) {
      EXPECT_GE(sel.counts()[static_cast<size_t>(c)], 1);
      EXPECT_LE(sel.counts()[static_cast<size_t>(c)], 4);
    }
  }
}

}  // namespace
}  // namespace fairhms
