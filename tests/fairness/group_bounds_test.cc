#include "fairness/group_bounds.h"

#include <numeric>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeGrouping;

TEST(GroupBoundsTest, ExplicitValidates) {
  auto ok = GroupBounds::Explicit(5, {1, 1}, {3, 3});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->k, 5);
  EXPECT_EQ(ok->num_groups(), 2);
}

TEST(GroupBoundsTest, ExplicitRejectsBadShapes) {
  EXPECT_FALSE(GroupBounds::Explicit(5, {1}, {3, 3}).ok());
  EXPECT_FALSE(GroupBounds::Explicit(0, {0}, {1}).ok());
  EXPECT_FALSE(GroupBounds::Explicit(5, {2}, {1}).ok());    // l > h.
  EXPECT_FALSE(GroupBounds::Explicit(5, {-1}, {2}).ok());   // Negative l.
  EXPECT_FALSE(GroupBounds::Explicit(2, {2, 2}, {3, 3}).ok());  // sum(l) > k.
  EXPECT_FALSE(GroupBounds::Explicit(9, {1, 1}, {3, 3}).ok());  // sum(h) < k.
}

TEST(GroupBoundsTest, ProportionalFollowsPaperFormula) {
  // Paper Sec. 5.1: l_c = max(1, floor((1-a) k |Dc|/|D|)),
  //                 h_c = min(k-C+1, ceil((1+a) k |Dc|/|D|)), a = 0.1.
  const std::vector<int> counts = {800, 200};
  const GroupBounds b = GroupBounds::Proportional(10, counts, 0.1);
  EXPECT_EQ(b.lower[0], 7);   // floor(0.9 * 8) = 7.
  EXPECT_EQ(b.upper[0], 9);   // min(9, ceil(1.1 * 8) = 9).
  EXPECT_EQ(b.lower[1], 1);   // floor(0.9 * 2) = 1.
  EXPECT_EQ(b.upper[1], 3);   // ceil(1.1 * 2) = 3.
  EXPECT_TRUE(b.Validate(counts).ok());
}

TEST(GroupBoundsTest, ProportionalLowerAtLeastOne) {
  const std::vector<int> counts = {9990, 10};
  const GroupBounds b = GroupBounds::Proportional(10, counts, 0.1);
  EXPECT_GE(b.lower[1], 1);  // "or at least 1".
  EXPECT_LE(b.upper[0], 9);  // "or at most k-C+1".
}

TEST(GroupBoundsTest, ProportionalRepairsInfeasibleManyGroups) {
  // 10 groups with a dominant one at k=16: the raw paper formula yields
  // sum(l) > k (the "at least 1" floors plus the k-C+1 cap); the repair
  // must deliver a satisfiable constraint.
  const std::vector<int> counts = {18000, 9000, 800, 700, 600,
                                   500,   400,  300, 200, 100};
  const GroupBounds b = GroupBounds::Proportional(16, counts, 0.1);
  EXPECT_TRUE(b.Validate(counts).ok());
  long long sum_l = 0;
  for (int l : b.lower) sum_l += l;
  EXPECT_LE(sum_l, 16);
}

TEST(GroupBoundsTest, ProportionalRepairRaisesUppersWhenShort) {
  // Two groups, k much larger than the proportional caps suggest.
  const std::vector<int> counts = {50, 50};
  const GroupBounds b = GroupBounds::Proportional(20, counts, 0.0);
  EXPECT_TRUE(b.Validate(counts).ok());
}

TEST(GroupBoundsTest, BalancedFollowsFormula) {
  const auto b = GroupBounds::Balanced(10, 4, 0.2);
  ASSERT_TRUE(b.ok()) << b.status();
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(b->lower[static_cast<size_t>(c)], 2);  // floor(0.8 * 2.5).
    EXPECT_EQ(b->upper[static_cast<size_t>(c)], 3);  // ceil(1.2 * 2.5).
  }
}

TEST(GroupBoundsTest, BalancedRejectsNonPositiveGroupCount) {
  // Regression: num_groups <= 0 used to divide by zero and return empty
  // bounds with no error.
  EXPECT_EQ(GroupBounds::Balanced(10, 0, 0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GroupBounds::Balanced(10, -3, 0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GroupBounds::Balanced(0, 4, 0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GroupBounds::Balanced(10, 4, -0.5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupBoundsTest, BalancedCapsUpperAtK) {
  // One group with a huge alpha: ceil((1+alpha) * k) would exceed k.
  const auto b = GroupBounds::Balanced(5, 1, 3.0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->upper[0], 5);
  EXPECT_LE(b->lower[0], b->upper[0]);

  // Many groups, large alpha: every hi capped at k, still feasible.
  const auto wide = GroupBounds::Balanced(6, 3, 10.0);
  ASSERT_TRUE(wide.ok());
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(wide->upper[static_cast<size_t>(c)], 6);
  }
  EXPECT_TRUE(wide->Validate({10, 10, 10}).ok());
}

TEST(GroupBoundsTest, ValidateDetectsSmallGroups) {
  auto b = GroupBounds::Explicit(4, {3, 1}, {3, 3});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->Validate({2, 10}).code(), StatusCode::kInfeasible);
  EXPECT_TRUE(b->Validate({3, 10}).ok());
}

TEST(GroupBoundsTest, ValidateDetectsUnreachableK) {
  auto b = GroupBounds::Explicit(6, {0, 0}, {5, 5});
  ASSERT_TRUE(b.ok());
  // Only 2 + 3 = 5 tuples available.
  EXPECT_EQ(b->Validate({2, 3}).code(), StatusCode::kInfeasible);
}

TEST(CountViolationsTest, ZeroForFairSolution) {
  const Grouping g = MakeGrouping({0, 0, 1, 1}, 2);
  auto b = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(CountViolations({0, 2}, g, *b), 0);
}

TEST(CountViolationsTest, CountsOverAndUnderRepresentation) {
  const Grouping g = MakeGrouping({0, 0, 0, 1, 1}, 2);
  auto b = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(b.ok());
  // Both from group 0: group 0 exceeds by 1, group 1 short by 1 -> err = 2.
  EXPECT_EQ(CountViolations({0, 1}, g, *b), 2);
}

TEST(CountViolationsTest, MatchesEquationThree) {
  const Grouping g = MakeGrouping({0, 0, 0, 0, 1, 1, 2}, 3);
  auto b = GroupBounds::Explicit(4, {1, 1, 1}, {2, 2, 2});
  ASSERT_TRUE(b.ok());
  // Solution: 3 from group 0 (over by 1), 1 from group 1 (ok), 0 from group
  // 2 (under by 1) -> err = 2.
  EXPECT_EQ(CountViolations({0, 1, 2, 4}, g, *b), 2);
}

TEST(SolutionGroupCountsTest, Counts) {
  const Grouping g = MakeGrouping({0, 1, 1, 2}, 3);
  const auto counts = SolutionGroupCounts({0, 1, 2}, g);
  EXPECT_EQ(counts, (std::vector<int>{1, 2, 0}));
}

TEST(AllocateQuotasTest, RespectsBoundsAndSumsToK) {
  auto b = GroupBounds::Explicit(10, {1, 1, 1}, {6, 6, 6});
  ASSERT_TRUE(b.ok());
  auto q = AllocateQuotas(*b, {700, 200, 100}, {100, 100, 100});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(std::accumulate(q->begin(), q->end(), 0), 10);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_GE((*q)[c], b->lower[c]);
    EXPECT_LE((*q)[c], b->upper[c]);
  }
  // Dominant group gets the most.
  EXPECT_GT((*q)[0], (*q)[1]);
  EXPECT_GE((*q)[1], (*q)[2]);
}

TEST(AllocateQuotasTest, CapsRespected) {
  auto b = GroupBounds::Explicit(6, {0, 0}, {6, 6});
  ASSERT_TRUE(b.ok());
  auto q = AllocateQuotas(*b, {100, 100}, {2, 10});
  ASSERT_TRUE(q.ok());
  EXPECT_LE((*q)[0], 2);
  EXPECT_EQ((*q)[0] + (*q)[1], 6);
}

TEST(AllocateQuotasTest, InfeasibleWhenCapsTooTight) {
  auto b = GroupBounds::Explicit(6, {0, 0}, {6, 6});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(AllocateQuotas(*b, {1, 1}, {2, 2}).status().code(),
            StatusCode::kInfeasible);
}

TEST(AllocateQuotasTest, LowerBoundAboveCapFails) {
  auto b = GroupBounds::Explicit(4, {3, 0}, {3, 4});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(AllocateQuotas(*b, {1, 1}, {2, 4}).status().code(),
            StatusCode::kInfeasible);
}

}  // namespace
}  // namespace fairhms
