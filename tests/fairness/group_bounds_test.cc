#include "fairness/group_bounds.h"

#include <numeric>

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeGrouping;

TEST(GroupBoundsTest, ExplicitValidates) {
  auto ok = GroupBounds::Explicit(5, {1, 1}, {3, 3});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->k, 5);
  EXPECT_EQ(ok->num_groups(), 2);
}

TEST(GroupBoundsTest, ExplicitRejectsBadShapes) {
  EXPECT_FALSE(GroupBounds::Explicit(5, {1}, {3, 3}).ok());
  EXPECT_FALSE(GroupBounds::Explicit(0, {0}, {1}).ok());
  EXPECT_FALSE(GroupBounds::Explicit(5, {2}, {1}).ok());    // l > h.
  EXPECT_FALSE(GroupBounds::Explicit(5, {-1}, {2}).ok());   // Negative l.
  EXPECT_FALSE(GroupBounds::Explicit(2, {2, 2}, {3, 3}).ok());  // sum(l) > k.
  EXPECT_FALSE(GroupBounds::Explicit(9, {1, 1}, {3, 3}).ok());  // sum(h) < k.
}

TEST(GroupBoundsTest, ProportionalFollowsPaperFormula) {
  // Paper Sec. 5.1: l_c = max(1, floor((1-a) k |Dc|/|D|)),
  //                 h_c = min(k-C+1, ceil((1+a) k |Dc|/|D|)), a = 0.1.
  const std::vector<int> counts = {800, 200};
  const GroupBounds b = GroupBounds::Proportional(10, counts, 0.1);
  EXPECT_EQ(b.lower[0], 7);   // floor(0.9 * 8) = 7.
  EXPECT_EQ(b.upper[0], 9);   // min(9, ceil(1.1 * 8) = 9).
  EXPECT_EQ(b.lower[1], 1);   // floor(0.9 * 2) = 1.
  EXPECT_EQ(b.upper[1], 3);   // ceil(1.1 * 2) = 3.
  EXPECT_TRUE(b.Validate(counts).ok());
}

TEST(GroupBoundsTest, ProportionalLowerAtLeastOne) {
  const std::vector<int> counts = {9990, 10};
  const GroupBounds b = GroupBounds::Proportional(10, counts, 0.1);
  EXPECT_GE(b.lower[1], 1);  // "or at least 1".
  EXPECT_LE(b.upper[0], 9);  // "or at most k-C+1".
}

TEST(GroupBoundsTest, ProportionalClampsEmptyGroupsToZero) {
  // An empty group (e.g. after a filter removed its last member) must get
  // lo = hi = 0 — the old "at least 1" floor made the whole instance
  // infeasible by construction.
  const std::vector<int> counts = {500, 0, 300};
  const GroupBounds b = GroupBounds::Proportional(10, counts, 0.1);
  EXPECT_EQ(b.lower[1], 0);
  EXPECT_EQ(b.upper[1], 0);
  EXPECT_GE(b.lower[0], 1);
  EXPECT_GE(b.lower[2], 1);
  EXPECT_TRUE(b.Validate(counts).ok());
}

TEST(GroupBoundsTest, ProportionalAllButOneEmpty) {
  // k must be entirely servable by the one surviving group; the k-C+1 cap
  // counts only non-empty groups, so the survivor's upper bound reaches k.
  const std::vector<int> counts = {0, 0, 42, 0};
  const GroupBounds b = GroupBounds::Proportional(5, counts, 0.1);
  EXPECT_EQ(b.lower[0], 0);
  EXPECT_EQ(b.upper[0], 0);
  EXPECT_EQ(b.lower[3], 0);
  EXPECT_EQ(b.upper[3], 0);
  EXPECT_EQ(b.upper[2], 5);
  EXPECT_TRUE(b.Validate(counts).ok());
}

TEST(GroupBoundsTest, ProportionalAllEmptyStaysInfeasible) {
  // No tuples anywhere: every bound collapses to [0, 0], which cannot
  // cover k — Validate must reject (the all-zero upper bounds fail the
  // internal sum(h) >= k consistency check before the per-group pass).
  const std::vector<int> counts = {0, 0};
  const GroupBounds b = GroupBounds::Proportional(3, counts, 0.1);
  EXPECT_FALSE(b.Validate(counts).ok());
}

TEST(GroupBoundsTest, ProportionalEmptyGroupAfterDeletes) {
  // The dynamic case: live counts shift between queries as deletes drain a
  // group. Bounds built from the current counts must stay feasible at
  // every step down to (and including) zero.
  std::vector<int> counts = {400, 3, 350};
  for (; counts[1] >= 0; --counts[1]) {
    const GroupBounds b = GroupBounds::Proportional(8, counts, 0.2);
    EXPECT_TRUE(b.Validate(counts).ok())
        << "group 1 at " << counts[1] << " members";
    if (counts[1] == 0) {
      EXPECT_EQ(b.lower[1], 0);
      EXPECT_EQ(b.upper[1], 0);
    }
  }
}

TEST(GroupBoundsTest, ValidateNamesEveryInfeasibleGroup) {
  auto b = GroupBounds::Explicit(6, {2, 2, 2}, {2, 2, 2});
  ASSERT_TRUE(b.ok());
  const std::vector<std::string> names = {"F", "M", "X"};
  const Status st = b->Validate({1, 5, 0}, &names);
  EXPECT_EQ(st.code(), StatusCode::kInfeasible);
  // Both starving groups are named with their bounds and availability; the
  // satisfiable one is not.
  EXPECT_NE(st.message().find("group 0 ('F'): bounds [2, 2] but only 1"),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("group 2 ('X'): bounds [2, 2] but only 0"),
            std::string::npos)
      << st.ToString();
  EXPECT_EQ(st.message().find("('M')"), std::string::npos) << st.ToString();
}

TEST(GroupBoundsTest, ValidateNamesBindingGroupsWhenKUnreachable) {
  auto b = GroupBounds::Explicit(10, {0, 0}, {8, 8});
  ASSERT_TRUE(b.ok());
  const std::vector<std::string> names = {"a", "b"};
  const Status st = b->Validate({4, 3}, &names);
  EXPECT_EQ(st.code(), StatusCode::kInfeasible);
  EXPECT_NE(st.message().find("at most 7 tuples selectable but k=10"),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("group 0 ('a')"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.message().find("group 1 ('b')"), std::string::npos)
      << st.ToString();
}

TEST(GroupBoundsTest, ProportionalRepairsInfeasibleManyGroups) {
  // 10 groups with a dominant one at k=16: the raw paper formula yields
  // sum(l) > k (the "at least 1" floors plus the k-C+1 cap); the repair
  // must deliver a satisfiable constraint.
  const std::vector<int> counts = {18000, 9000, 800, 700, 600,
                                   500,   400,  300, 200, 100};
  const GroupBounds b = GroupBounds::Proportional(16, counts, 0.1);
  EXPECT_TRUE(b.Validate(counts).ok());
  long long sum_l = 0;
  for (int l : b.lower) sum_l += l;
  EXPECT_LE(sum_l, 16);
}

TEST(GroupBoundsTest, ProportionalRepairRaisesUppersWhenShort) {
  // Two groups, k much larger than the proportional caps suggest.
  const std::vector<int> counts = {50, 50};
  const GroupBounds b = GroupBounds::Proportional(20, counts, 0.0);
  EXPECT_TRUE(b.Validate(counts).ok());
}

TEST(GroupBoundsTest, BalancedFollowsFormula) {
  const auto b = GroupBounds::Balanced(10, 4, 0.2);
  ASSERT_TRUE(b.ok()) << b.status();
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(b->lower[static_cast<size_t>(c)], 2);  // floor(0.8 * 2.5).
    EXPECT_EQ(b->upper[static_cast<size_t>(c)], 3);  // ceil(1.2 * 2.5).
  }
}

TEST(GroupBoundsTest, BalancedRejectsNonPositiveGroupCount) {
  // Regression: num_groups <= 0 used to divide by zero and return empty
  // bounds with no error.
  EXPECT_EQ(GroupBounds::Balanced(10, 0, 0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GroupBounds::Balanced(10, -3, 0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GroupBounds::Balanced(0, 4, 0.1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GroupBounds::Balanced(10, 4, -0.5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupBoundsTest, BalancedCapsUpperAtK) {
  // One group with a huge alpha: ceil((1+alpha) * k) would exceed k.
  const auto b = GroupBounds::Balanced(5, 1, 3.0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->upper[0], 5);
  EXPECT_LE(b->lower[0], b->upper[0]);

  // Many groups, large alpha: every hi capped at k, still feasible.
  const auto wide = GroupBounds::Balanced(6, 3, 10.0);
  ASSERT_TRUE(wide.ok());
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(wide->upper[static_cast<size_t>(c)], 6);
  }
  EXPECT_TRUE(wide->Validate({10, 10, 10}).ok());
}

TEST(GroupBoundsTest, ValidateDetectsSmallGroups) {
  auto b = GroupBounds::Explicit(4, {3, 1}, {3, 3});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->Validate({2, 10}).code(), StatusCode::kInfeasible);
  EXPECT_TRUE(b->Validate({3, 10}).ok());
}

TEST(GroupBoundsTest, ValidateDetectsUnreachableK) {
  auto b = GroupBounds::Explicit(6, {0, 0}, {5, 5});
  ASSERT_TRUE(b.ok());
  // Only 2 + 3 = 5 tuples available.
  EXPECT_EQ(b->Validate({2, 3}).code(), StatusCode::kInfeasible);
}

TEST(CountViolationsTest, ZeroForFairSolution) {
  const Grouping g = MakeGrouping({0, 0, 1, 1}, 2);
  auto b = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(CountViolations({0, 2}, g, *b), 0);
}

TEST(CountViolationsTest, CountsOverAndUnderRepresentation) {
  const Grouping g = MakeGrouping({0, 0, 0, 1, 1}, 2);
  auto b = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(b.ok());
  // Both from group 0: group 0 exceeds by 1, group 1 short by 1 -> err = 2.
  EXPECT_EQ(CountViolations({0, 1}, g, *b), 2);
}

TEST(CountViolationsTest, MatchesEquationThree) {
  const Grouping g = MakeGrouping({0, 0, 0, 0, 1, 1, 2}, 3);
  auto b = GroupBounds::Explicit(4, {1, 1, 1}, {2, 2, 2});
  ASSERT_TRUE(b.ok());
  // Solution: 3 from group 0 (over by 1), 1 from group 1 (ok), 0 from group
  // 2 (under by 1) -> err = 2.
  EXPECT_EQ(CountViolations({0, 1, 2, 4}, g, *b), 2);
}

TEST(SolutionGroupCountsTest, Counts) {
  const Grouping g = MakeGrouping({0, 1, 1, 2}, 3);
  const auto counts = SolutionGroupCounts({0, 1, 2}, g);
  EXPECT_EQ(counts, (std::vector<int>{1, 2, 0}));
}

TEST(AllocateQuotasTest, RespectsBoundsAndSumsToK) {
  auto b = GroupBounds::Explicit(10, {1, 1, 1}, {6, 6, 6});
  ASSERT_TRUE(b.ok());
  auto q = AllocateQuotas(*b, {700, 200, 100}, {100, 100, 100});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(std::accumulate(q->begin(), q->end(), 0), 10);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_GE((*q)[c], b->lower[c]);
    EXPECT_LE((*q)[c], b->upper[c]);
  }
  // Dominant group gets the most.
  EXPECT_GT((*q)[0], (*q)[1]);
  EXPECT_GE((*q)[1], (*q)[2]);
}

TEST(AllocateQuotasTest, CapsRespected) {
  auto b = GroupBounds::Explicit(6, {0, 0}, {6, 6});
  ASSERT_TRUE(b.ok());
  auto q = AllocateQuotas(*b, {100, 100}, {2, 10});
  ASSERT_TRUE(q.ok());
  EXPECT_LE((*q)[0], 2);
  EXPECT_EQ((*q)[0] + (*q)[1], 6);
}

TEST(AllocateQuotasTest, InfeasibleWhenCapsTooTight) {
  auto b = GroupBounds::Explicit(6, {0, 0}, {6, 6});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(AllocateQuotas(*b, {1, 1}, {2, 2}).status().code(),
            StatusCode::kInfeasible);
}

TEST(AllocateQuotasTest, LowerBoundAboveCapFails) {
  auto b = GroupBounds::Explicit(4, {3, 0}, {3, 4});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(AllocateQuotas(*b, {1, 1}, {2, 4}).status().code(),
            StatusCode::kInfeasible);
}

}  // namespace
}  // namespace fairhms
