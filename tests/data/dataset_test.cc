#include "data/dataset.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace fairhms {
namespace {

TEST(DatasetTest, BasicConstruction) {
  Dataset data(3);
  EXPECT_EQ(data.dim(), 3);
  EXPECT_EQ(data.size(), 0u);
  data.AddPoint({0.1, 0.2, 0.3});
  ASSERT_EQ(data.size(), 1u);
  EXPECT_DOUBLE_EQ(data.at(0, 1), 0.2);
  EXPECT_DOUBLE_EQ(data.point(0)[2], 0.3);
}

TEST(DatasetTest, DefaultAttributeNames) {
  Dataset data(2);
  EXPECT_EQ(data.attr_names()[0], "attr0");
  EXPECT_EQ(data.attr_names()[1], "attr1");
}

TEST(DatasetTest, NamedAttributes) {
  Dataset data(std::vector<std::string>{"lsat", "gpa"});
  EXPECT_EQ(data.dim(), 2);
  EXPECT_EQ(data.attr_names()[0], "lsat");
}

TEST(DatasetTest, CategoricalColumns) {
  Dataset data(2);
  data.AddPoint({1, 2});  // Pre-existing row gets code 0.
  const int col = data.AddCategoricalColumn("gender", {"F", "M"});
  EXPECT_EQ(col, 0);
  data.AddRow({3, 4}, {1});
  ASSERT_EQ(data.num_categorical(), 1);
  EXPECT_EQ(data.categorical(0).codes[0], 0);
  EXPECT_EQ(data.categorical(0).codes[1], 1);
  EXPECT_EQ(data.categorical(0).labels[1], "M");
}

TEST(DatasetTest, FindCategorical) {
  Dataset data(2);
  data.AddCategoricalColumn("a", {"x"});
  data.AddCategoricalColumn("b", {"y"});
  auto found = data.FindCategorical("b");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1);
  EXPECT_EQ(data.FindCategorical("c").status().code(), StatusCode::kNotFound);
}

TEST(DatasetTest, ValidateRejectsNegativeValues) {
  Dataset data(2);
  data.AddPoint({1.0, -0.5});
  EXPECT_EQ(data.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, ValidateRejectsNonFinite) {
  Dataset data(1);
  data.AddPoint({std::numeric_limits<double>::infinity()});
  EXPECT_EQ(data.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, ValidateAcceptsCleanData) {
  Dataset data(2);
  data.AddPoint({0.0, 1.0});
  data.AddPoint({0.5, 0.5});
  EXPECT_TRUE(data.Validate().ok());
}

TEST(DatasetTest, NormalizedMinMaxScalesToUnit) {
  Dataset data(2);
  data.AddPoint({10, 100});
  data.AddPoint({20, 300});
  data.AddPoint({15, 200});
  const Dataset norm = data.NormalizedMinMax();
  EXPECT_DOUBLE_EQ(norm.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm.at(2, 0), 0.5);
  EXPECT_DOUBLE_EQ(norm.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(norm.at(0, 1), 0.0);
}

TEST(DatasetTest, NormalizedMinMaxConstantColumnBecomesOne) {
  Dataset data(2);
  data.AddPoint({5, 1});
  data.AddPoint({5, 2});
  const Dataset norm = data.NormalizedMinMax();
  EXPECT_DOUBLE_EQ(norm.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm.at(1, 0), 1.0);
}

TEST(DatasetTest, ScaledByMaxDividesByColumnMax) {
  Dataset data(2);
  data.AddPoint({170, 2.0});
  data.AddPoint({85, 4.0});
  const Dataset s = data.ScaledByMax();
  EXPECT_DOUBLE_EQ(s.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 1.0);
}

TEST(DatasetTest, ScaledByMaxZeroColumn) {
  Dataset data(1);
  data.AddPoint({0});
  data.AddPoint({0});
  const Dataset s = data.ScaledByMax();
  EXPECT_DOUBLE_EQ(s.at(0, 0), 0.0);
}

TEST(DatasetTest, SubsetPreservesRowsAndCategoricals) {
  Dataset data(2);
  data.AddCategoricalColumn("g", {"a", "b"});
  data.AddRow({1, 2}, {0});
  data.AddRow({3, 4}, {1});
  data.AddRow({5, 6}, {0});
  const Dataset sub = data.Subset({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 1), 2.0);
  EXPECT_EQ(sub.categorical(0).codes[0], 0);
  EXPECT_EQ(sub.categorical(0).labels[1], "b");
}

TEST(DatasetTest, ReserveDoesNotChangeSize) {
  Dataset data(2);
  data.Reserve(100);
  EXPECT_EQ(data.size(), 0u);
}

}  // namespace
}  // namespace fairhms
