#include "data/generators.h"

#include <gtest/gtest.h>

#include "data/grouping.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

TEST(GeneratorsTest, AntiCorrelatedShapeAndRange) {
  Rng rng(1);
  const Dataset data = GenAntiCorrelated(2000, 4, &rng);
  EXPECT_EQ(data.size(), 2000u);
  EXPECT_EQ(data.dim(), 4);
  ASSERT_TRUE(data.Validate().ok());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_GE(data.at(i, j), 0.0);
      EXPECT_LE(data.at(i, j), 1.0);
    }
  }
}

TEST(GeneratorsTest, AntiCorrelatedHasNegativePairwiseCorrelation) {
  Rng rng(2);
  const Dataset data = GenAntiCorrelated(5000, 2, &rng);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const double n = static_cast<double>(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    const double x = data.at(i, 0);
    const double y = data.at(i, 1);
    sx += x; sy += y; sxx += x * x; syy += y * y; sxy += x * y;
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  const double corr = cov / std::sqrt(vx * vy);
  EXPECT_LT(corr, -0.5);
}

TEST(GeneratorsTest, AntiCorrelatedSkylineIsHuge) {
  Rng rng(3);
  const Dataset data = GenAntiCorrelated(2000, 6, &rng);
  const auto sky = ComputeSkyline(data);
  // Table 2 reports 0.9n..n for anti-correlated data.
  EXPECT_GT(sky.size(), data.size() * 7 / 10);
}

TEST(GeneratorsTest, CorrelatedSkylineIsTiny) {
  Rng rng(4);
  const Dataset data = GenCorrelated(5000, 4, &rng);
  const auto sky = ComputeSkyline(data);
  EXPECT_LT(sky.size(), 200u);
}

TEST(GeneratorsTest, IndependentUniform) {
  Rng rng(5);
  const Dataset data = GenIndependent(3000, 3, &rng);
  ASSERT_TRUE(data.Validate().ok());
  double mean = 0;
  for (size_t i = 0; i < data.size(); ++i) mean += data.at(i, 0);
  EXPECT_NEAR(mean / static_cast<double>(data.size()), 0.5, 0.03);
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng a(77), b(77);
  const Dataset d1 = GenAntiCorrelated(100, 3, &a);
  const Dataset d2 = GenAntiCorrelated(100, 3, &b);
  for (size_t i = 0; i < 100; ++i) {
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(d1.at(i, j), d2.at(i, j));
  }
}

TEST(GeneratorsTest, LawschsSimMatchesTable2Shape) {
  Rng rng(6);
  const Dataset data = MakeLawschsSim(&rng, 20000);
  EXPECT_EQ(data.dim(), 2);
  EXPECT_EQ(data.num_categorical(), 2);
  auto gender = GroupByCategorical(data, "gender");
  ASSERT_TRUE(gender.ok());
  EXPECT_EQ(gender->num_groups, 2);
  auto race = GroupByCategorical(data, "race");
  ASSERT_TRUE(race.ok());
  EXPECT_EQ(race->num_groups, 5);
  // Positively correlated columns -> small per-group skylines (Table 2
  // reports 19/42 for the real file).
  const Dataset norm = data.ScaledByMax();
  const auto pool = ComputeFairCandidatePool(norm, race.value());
  EXPECT_LT(pool.size(), 300u);
}

TEST(GeneratorsTest, AdultSimShape) {
  Rng rng(7);
  const Dataset data = MakeAdultSim(&rng, 5000);
  EXPECT_EQ(data.dim(), 5);
  auto g = GroupByCategoricalProduct(data, {"gender", "race"});
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g->num_groups, 10);
  EXPECT_GE(g->num_groups, 6);  // Rare combos may be absent at small n.
  ASSERT_TRUE(data.Validate().ok());
}

TEST(GeneratorsTest, AdultSimGenderSkewMatches) {
  Rng rng(8);
  const Dataset data = MakeAdultSim(&rng, 20000);
  auto g = GroupByCategorical(data, "gender");
  ASSERT_TRUE(g.ok());
  const auto counts = g->Counts();
  const double male_share =
      static_cast<double>(std::max(counts[0], counts[1])) / 20000.0;
  EXPECT_NEAR(male_share, 0.669, 0.02);
}

TEST(GeneratorsTest, CompasSimShape) {
  Rng rng(9);
  const Dataset data = MakeCompasSim(&rng, 4743);
  EXPECT_EQ(data.dim(), 9);
  EXPECT_EQ(data.size(), 4743u);
  auto g = GroupByCategoricalProduct(data, {"gender", "isRecid"});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_groups, 4);
  ASSERT_TRUE(data.Validate().ok());
}

TEST(GeneratorsTest, CreditSimShape) {
  Rng rng(10);
  const Dataset data = MakeCreditSim(&rng, 1000);
  EXPECT_EQ(data.dim(), 7);
  EXPECT_EQ(data.size(), 1000u);
  auto housing = GroupByCategorical(data, "housing");
  ASSERT_TRUE(housing.ok());
  EXPECT_EQ(housing->num_groups, 3);
  auto job = GroupByCategorical(data, "job");
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(job->num_groups, 4);
  auto wy = GroupByCategorical(data, "working_years");
  ASSERT_TRUE(wy.ok());
  EXPECT_EQ(wy->num_groups, 5);
}

}  // namespace
}  // namespace fairhms
