#include "data/csv.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairhms {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/fairhms_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, ReadsNumericAndCategorical) {
  WriteFile("lsat,gpa,gender\n160,3.5,F\n170,3.1,M\n155,3.9,F\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"lsat", "gpa"};
  opts.categorical_columns = {"gender"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->size(), 3u);
  EXPECT_EQ(data->dim(), 2);
  EXPECT_DOUBLE_EQ(data->at(1, 0), 170.0);
  ASSERT_EQ(data->num_categorical(), 1);
  EXPECT_EQ(data->categorical(0).labels.size(), 2u);
  EXPECT_EQ(data->categorical(0).codes[0], data->categorical(0).codes[2]);
}

TEST_F(CsvTest, ColumnOrderFollowsRequest) {
  WriteFile("a,b\n1,2\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"b", "a"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(data->at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(data->at(0, 1), 1.0);
}

TEST_F(CsvTest, MissingColumnFails) {
  WriteFile("a,b\n1,2\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"zzz"};
  EXPECT_EQ(ReadCsv(path_, opts).status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, BadNumericCellFailsByDefault) {
  WriteFile("a\n1\nnope\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  EXPECT_EQ(ReadCsv(path_, opts).status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, SkipBadRowsMode) {
  WriteFile("a\n1\nnope\n3\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.skip_bad_rows = true;
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 2u);
}

TEST_F(CsvTest, EmptyNumericColumnsRejected) {
  WriteFile("a\n1\n");
  EXPECT_EQ(ReadCsv(path_, CsvReadOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, MissingFileFails) {
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  EXPECT_EQ(ReadCsv("/nonexistent/file.csv", opts).status().code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, BlankLinesSkipped) {
  WriteFile("a\n1\n\n2\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 2u);
}

TEST_F(CsvTest, RoundTrip) {
  Dataset data(std::vector<std::string>{"x", "y"});
  data.AddCategoricalColumn("grp", {"one", "two"});
  data.AddRow({0.25, 1.5}, {0});
  data.AddRow({0.75, 2.5}, {1});
  ASSERT_TRUE(WriteCsv(data, path_).ok());

  CsvReadOptions opts;
  opts.numeric_columns = {"x", "y"};
  opts.categorical_columns = {"grp"};
  auto back = ReadCsv(path_, opts);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_DOUBLE_EQ(back->at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(back->at(1, 1), 2.5);
  EXPECT_EQ(back->categorical(0).labels[back->categorical(0).codes[1]], "two");
}

TEST_F(CsvTest, CustomDelimiter) {
  WriteFile("a;b\n1;2\n");
  CsvReadOptions opts;
  opts.delimiter = ';';
  opts.numeric_columns = {"a", "b"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(data->at(0, 1), 2.0);
}

// ---------------------------------------------------------------------------
// RFC-4180 quoting: real fairness datasets (Adult/COMPAS-style) carry
// quoted, comma-bearing categorical labels; the writer used to emit them
// verbatim, producing files the reader silently corrupted.

TEST_F(CsvTest, ReadsQuotedFields) {
  WriteFile("a,g\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n3,\"line\nbreak\"\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.categorical_columns = {"g"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_EQ(data->size(), 3u);
  const auto& col = data->categorical(0);
  EXPECT_EQ(col.labels[static_cast<size_t>(col.codes[0])], "x,y");
  EXPECT_EQ(col.labels[static_cast<size_t>(col.codes[1])], "say \"hi\"");
  EXPECT_EQ(col.labels[static_cast<size_t>(col.codes[2])], "line\nbreak");
}

TEST_F(CsvTest, QuotedFieldsKeepWhitespaceUnquotedAreTrimmed) {
  WriteFile("a,g\n1,\" padded \"\n2,  plain  \n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.categorical_columns = {"g"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok()) << data.status();
  const auto& col = data->categorical(0);
  EXPECT_EQ(col.labels[static_cast<size_t>(col.codes[0])], " padded ");
  EXPECT_EQ(col.labels[static_cast<size_t>(col.codes[1])], "plain");
}

TEST_F(CsvTest, QuotedHeaderAndNumericCells) {
  WriteFile("\"price, usd\",g\n\"1.5\",x\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"price, usd"};
  opts.categorical_columns = {"g"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_DOUBLE_EQ(data->at(0, 0), 1.5);
  EXPECT_EQ(data->attr_names()[0], "price, usd");
}

TEST_F(CsvTest, CrlfLineEndings) {
  WriteFile("a,g\r\n1,x\r\n2,y\r\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.categorical_columns = {"g"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok()) << data.status();
  ASSERT_EQ(data->size(), 2u);
  // No stray '\r' may leak into labels.
  EXPECT_EQ(data->categorical(0).labels[0], "x");
  EXPECT_EQ(data->categorical(0).labels[1], "y");
}

TEST_F(CsvTest, UnterminatedQuoteIsAnError) {
  WriteFile("a,g\n1,\"never closed\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.categorical_columns = {"g"};
  EXPECT_EQ(ReadCsv(path_, opts).status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, AdversarialLabelsRoundTrip) {
  Dataset data(std::vector<std::string>{"x", "attr,with,commas"});
  data.AddCategoricalColumn(
      "grp", {"plain", "comma, inside", "\"quoted\"", "line\nbreak",
              "cr\rhere", " boundary space ", "", "mix,\"of\"\nall"});
  for (int i = 0; i < 16; ++i) {
    data.AddRow({0.1 * i, 1.0 / (i + 1)}, {i % 8});
  }
  ASSERT_TRUE(WriteCsv(data, path_).ok());

  CsvReadOptions opts;
  opts.numeric_columns = {"x", "attr,with,commas"};
  opts.categorical_columns = {"grp"};
  auto back = ReadCsv(path_, opts);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), data.size());
  ASSERT_EQ(back->categorical(0).labels, data.categorical(0).labels);
  EXPECT_EQ(back->categorical(0).codes, data.categorical(0).codes);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int j = 0; j < data.dim(); ++j) {
      EXPECT_EQ(back->at(i, j), data.at(i, j)) << i << "," << j;
    }
  }
}

TEST_F(CsvTest, PropertyRandomLabelsRoundTrip) {
  // Property-style sweep: labels drawn from an alphabet stacked with every
  // character the quoting layer must survive. The written file must
  // re-read to an identical dataset — same coords (bit-exact), codes and
  // labels — across many random tables.
  const std::string alphabet = "ab,\"\n\r;| .'\\\t";
  Rng rng(20260730);
  for (int trial = 0; trial < 25; ++trial) {
    Dataset data(std::vector<std::string>{"u", "v"});
    const int num_labels = 1 + static_cast<int>(rng.UniformInt(6));
    std::vector<std::string> labels;
    for (int l = 0; l < num_labels; ++l) {
      std::string label;
      const size_t len = rng.UniformInt(9);  // Empty labels included.
      for (size_t c = 0; c < len; ++c) {
        label.push_back(alphabet[rng.UniformInt(alphabet.size())]);
      }
      if (std::find(labels.begin(), labels.end(), label) != labels.end()) {
        label += "#" + std::to_string(l);  // Keep labels distinct.
      }
      labels.push_back(label);
    }
    data.AddCategoricalColumn("g", labels);
    const size_t rows = 1 + rng.UniformInt(20);
    for (size_t i = 0; i < rows; ++i) {
      data.AddRow({rng.Uniform(), rng.Uniform() * 1e3},
                  {static_cast<int>(rng.UniformInt(labels.size()))});
    }
    ASSERT_TRUE(WriteCsv(data, path_).ok()) << "trial " << trial;

    CsvReadOptions opts;
    opts.numeric_columns = {"u", "v"};
    opts.categorical_columns = {"g"};
    auto back = ReadCsv(path_, opts);
    ASSERT_TRUE(back.ok()) << "trial " << trial << ": " << back.status();
    ASSERT_EQ(back->size(), data.size()) << "trial " << trial;
    // Labels come back in first-seen row order; compare through the codes.
    for (size_t i = 0; i < rows; ++i) {
      EXPECT_EQ(back->at(i, 0), data.at(i, 0)) << "trial " << trial;
      EXPECT_EQ(back->at(i, 1), data.at(i, 1)) << "trial " << trial;
      const auto& got = back->categorical(0);
      const auto& want = data.categorical(0);
      EXPECT_EQ(got.labels[static_cast<size_t>(got.codes[i])],
                want.labels[static_cast<size_t>(want.codes[i])])
          << "trial " << trial << " row " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Missing-cell policy: a row too short to carry a categorical cell used to
// be silently assigned an invented "?" group even in strict mode.

TEST_F(CsvTest, MissingCategoricalCellFailsByDefault) {
  WriteFile("a,g\n1,x\n2\n3,y\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.categorical_columns = {"g"};
  auto data = ReadCsv(path_, opts);
  EXPECT_EQ(data.status().code(), StatusCode::kIOError);
  EXPECT_NE(data.status().message().find("missing categorical cell"),
            std::string::npos)
      << data.status().message();
}

TEST_F(CsvTest, MissingCategoricalCellSkippedWhenLenient) {
  WriteFile("a,g\n1,x\n2\n3,y\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.categorical_columns = {"g"};
  opts.skip_bad_rows = true;
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->size(), 2u);
  // No invented placeholder group.
  EXPECT_EQ(data->categorical(0).labels,
            (std::vector<std::string>{"x", "y"}));
}

TEST_F(CsvTest, SkippedRowRegistersNoLabel) {
  // The bad row's would-be label must not leak into the label table.
  WriteFile("a,g\nnope,ghost\n1,real\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.categorical_columns = {"g"};
  opts.skip_bad_rows = true;
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->categorical(0).labels,
            (std::vector<std::string>{"real"}));
}

TEST_F(CsvTest, CoordinatesRoundTripBitExact) {
  Dataset data(std::vector<std::string>{"x"});
  data.AddPoint({1.0 / 3.0});
  data.AddPoint({std::sqrt(2.0)});
  data.AddPoint({1e-17});
  data.AddPoint({123456789.123456789});
  ASSERT_TRUE(WriteCsv(data, path_).ok());
  CsvReadOptions opts;
  opts.numeric_columns = {"x"};
  auto back = ReadCsv(path_, opts);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(back->at(i, 0), data.at(i, 0)) << "row " << i;  // Bit-exact.
  }
}

}  // namespace
}  // namespace fairhms
