#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace fairhms {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/fairhms_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, ReadsNumericAndCategorical) {
  WriteFile("lsat,gpa,gender\n160,3.5,F\n170,3.1,M\n155,3.9,F\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"lsat", "gpa"};
  opts.categorical_columns = {"gender"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(data->size(), 3u);
  EXPECT_EQ(data->dim(), 2);
  EXPECT_DOUBLE_EQ(data->at(1, 0), 170.0);
  ASSERT_EQ(data->num_categorical(), 1);
  EXPECT_EQ(data->categorical(0).labels.size(), 2u);
  EXPECT_EQ(data->categorical(0).codes[0], data->categorical(0).codes[2]);
}

TEST_F(CsvTest, ColumnOrderFollowsRequest) {
  WriteFile("a,b\n1,2\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"b", "a"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(data->at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(data->at(0, 1), 1.0);
}

TEST_F(CsvTest, MissingColumnFails) {
  WriteFile("a,b\n1,2\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"zzz"};
  EXPECT_EQ(ReadCsv(path_, opts).status().code(), StatusCode::kNotFound);
}

TEST_F(CsvTest, BadNumericCellFailsByDefault) {
  WriteFile("a\n1\nnope\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  EXPECT_EQ(ReadCsv(path_, opts).status().code(), StatusCode::kIOError);
}

TEST_F(CsvTest, SkipBadRowsMode) {
  WriteFile("a\n1\nnope\n3\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  opts.skip_bad_rows = true;
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 2u);
}

TEST_F(CsvTest, EmptyNumericColumnsRejected) {
  WriteFile("a\n1\n");
  EXPECT_EQ(ReadCsv(path_, CsvReadOptions{}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, MissingFileFails) {
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  EXPECT_EQ(ReadCsv("/nonexistent/file.csv", opts).status().code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, BlankLinesSkipped) {
  WriteFile("a\n1\n\n2\n");
  CsvReadOptions opts;
  opts.numeric_columns = {"a"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 2u);
}

TEST_F(CsvTest, RoundTrip) {
  Dataset data(std::vector<std::string>{"x", "y"});
  data.AddCategoricalColumn("grp", {"one", "two"});
  data.AddRow({0.25, 1.5}, {0});
  data.AddRow({0.75, 2.5}, {1});
  ASSERT_TRUE(WriteCsv(data, path_).ok());

  CsvReadOptions opts;
  opts.numeric_columns = {"x", "y"};
  opts.categorical_columns = {"grp"};
  auto back = ReadCsv(path_, opts);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_DOUBLE_EQ(back->at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(back->at(1, 1), 2.5);
  EXPECT_EQ(back->categorical(0).labels[back->categorical(0).codes[1]], "two");
}

TEST_F(CsvTest, CustomDelimiter) {
  WriteFile("a;b\n1;2\n");
  CsvReadOptions opts;
  opts.delimiter = ';';
  opts.numeric_columns = {"a", "b"};
  auto data = ReadCsv(path_, opts);
  ASSERT_TRUE(data.ok());
  EXPECT_DOUBLE_EQ(data->at(0, 1), 2.0);
}

}  // namespace
}  // namespace fairhms
