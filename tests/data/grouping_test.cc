#include "data/grouping.h"

#include <gtest/gtest.h>

#include "testing/test_util.h"

namespace fairhms {
namespace {

Dataset TwoColumnData() {
  Dataset data(2);
  data.AddCategoricalColumn("gender", {"F", "M"});
  data.AddCategoricalColumn("race", {"A", "B", "C"});
  data.AddRow({1, 1}, {0, 0});
  data.AddRow({2, 2}, {1, 0});
  data.AddRow({3, 3}, {0, 1});
  data.AddRow({4, 4}, {1, 1});
  data.AddRow({5, 5}, {0, 0});
  return data;
}

TEST(GroupingTest, SingleGroup) {
  const Grouping g = SingleGroup(4);
  EXPECT_EQ(g.num_groups, 1);
  EXPECT_EQ(g.group_of.size(), 4u);
  EXPECT_EQ(g.Counts()[0], 4);
}

TEST(GroupingTest, ByCategorical) {
  const Dataset data = TwoColumnData();
  auto g = GroupByCategorical(data, "gender");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_groups, 2);
  const auto counts = g->Counts();
  EXPECT_EQ(counts[g->group_of[0]], 3);  // F appears 3 times.
}

TEST(GroupingTest, MissingColumnFails) {
  const Dataset data = TwoColumnData();
  EXPECT_EQ(GroupByCategorical(data, "zzz").status().code(),
            StatusCode::kNotFound);
}

TEST(GroupingTest, ProductGrouping) {
  const Dataset data = TwoColumnData();
  auto g = GroupByCategoricalProduct(data, {"gender", "race"});
  ASSERT_TRUE(g.ok());
  // Occurring combos: F+A, M+A, F+B, M+B -> 4 groups (C never occurs).
  EXPECT_EQ(g->num_groups, 4);
  // Rows 0 and 4 share the F+A group.
  EXPECT_EQ(g->group_of[0], g->group_of[4]);
  EXPECT_NE(g->group_of[0], g->group_of[1]);
}

TEST(GroupingTest, ProductNamesJoined) {
  const Dataset data = TwoColumnData();
  auto g = GroupByCategoricalProduct(data, {"gender", "race"});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->names[static_cast<size_t>(g->group_of[0])], "F+A");
}

TEST(GroupingTest, EmptyColumnsRejected) {
  const Dataset data = TwoColumnData();
  EXPECT_EQ(GroupByCategoricalProduct(data, {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GroupingTest, MembersPartitionRows) {
  const Dataset data = TwoColumnData();
  auto g = GroupByCategorical(data, "race");
  ASSERT_TRUE(g.ok());
  const auto members = g->Members();
  size_t total = 0;
  for (const auto& m : members) total += m.size();
  EXPECT_EQ(total, data.size());
}

TEST(GroupingTest, SumRankSplitsEvenly) {
  Dataset data(1);
  for (int i = 0; i < 10; ++i) data.AddPoint({static_cast<double>(i)});
  const Grouping g = GroupBySumRank(data, 5);
  EXPECT_EQ(g.num_groups, 5);
  const auto counts = g.Counts();
  for (int c : counts) EXPECT_EQ(c, 2);
  // Lowest sums land in group 0.
  EXPECT_EQ(g.group_of[0], 0);
  EXPECT_EQ(g.group_of[9], 4);
}

TEST(GroupingTest, SumRankUnevenSizes) {
  Dataset data(1);
  for (int i = 0; i < 7; ++i) data.AddPoint({static_cast<double>(i)});
  const Grouping g = GroupBySumRank(data, 3);
  const auto counts = g.Counts();
  int total = 0;
  for (int c : counts) {
    EXPECT_GE(c, 2);
    EXPECT_LE(c, 3);
    total += c;
  }
  EXPECT_EQ(total, 7);
}

TEST(GroupingTest, SumRankSingleGroupDegenerates) {
  Dataset data(1);
  data.AddPoint({1});
  data.AddPoint({2});
  const Grouping g = GroupBySumRank(data, 1);
  EXPECT_EQ(g.num_groups, 1);
  EXPECT_EQ(g.Counts()[0], 2);
}

}  // namespace
}  // namespace fairhms
