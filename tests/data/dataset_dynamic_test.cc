// Versioned mutation of Dataset (AppendRows / ErasePoints / tombstones)
// and the live views layered on it (LiveRows, Grouping::LiveCounts /
// MembersLive, live-filtered skylines).

#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/grouping.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;
using testing::MakeGrouping;

TEST(DatasetDynamicTest, VersionBumpsOnEveryMutation) {
  Dataset data(2);
  const uint64_t v0 = data.version();
  data.AddPoint({0.1, 0.2});
  EXPECT_GT(data.version(), v0);
  const uint64_t v1 = data.version();
  ASSERT_TRUE(data.AppendRows({{0.3, 0.4}, {0.5, 0.6}}, {{}, {}}).ok());
  EXPECT_GT(data.version(), v1);
  const uint64_t v2 = data.version();
  ASSERT_TRUE(data.ErasePoints({1}).ok());
  EXPECT_GT(data.version(), v2);
}

TEST(DatasetDynamicTest, AppendRowsReturnsFirstIndexAndValidates) {
  Dataset data(2);
  data.AddPoint({0.5, 0.5});
  auto first = data.AppendRows({{0.1, 0.9}, {0.9, 0.1}}, {{}, {}});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, 1);
  EXPECT_EQ(data.size(), 3u);
  EXPECT_EQ(data.live_size(), 3u);
  EXPECT_DOUBLE_EQ(data.at(2, 0), 0.9);

  // Bad shapes and bad values leave the table untouched.
  EXPECT_FALSE(data.AppendRows({}, {}).ok());
  EXPECT_FALSE(data.AppendRows({{0.1}}, {{}}).ok());           // Wrong dim.
  EXPECT_FALSE(data.AppendRows({{0.1, -0.2}}, {{}}).ok());     // Negative.
  EXPECT_FALSE(data.AppendRows({{0.1, 0.2}}, {{}, {}}).ok());  // Shape.
  EXPECT_EQ(data.size(), 3u);
}

TEST(DatasetDynamicTest, AppendRowsChecksCategoricalCodes) {
  Dataset data(2);
  data.AddCategoricalColumn("g", {"a", "b"});
  ASSERT_TRUE(data.AppendRows({{0.1, 0.1}}, {{1}}).ok());
  EXPECT_FALSE(data.AppendRows({{0.1, 0.1}}, {{2}}).ok());   // Code range.
  EXPECT_FALSE(data.AppendRows({{0.1, 0.1}}, {{}}).ok());    // Missing code.
  EXPECT_EQ(data.size(), 1u);
  EXPECT_EQ(data.categorical(0).codes[0], 1);
}

TEST(DatasetDynamicTest, ErasePointsTombstonesWithoutMovingRows) {
  Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.5, 0.5}, {0.2, 0.2}});
  ASSERT_TRUE(data.ErasePoints({1, 3}).ok());
  EXPECT_EQ(data.size(), 4u);  // Indices keep their meaning.
  EXPECT_EQ(data.live_size(), 2u);
  EXPECT_TRUE(data.live(0));
  EXPECT_FALSE(data.live(1));
  EXPECT_TRUE(data.has_tombstones());
  EXPECT_EQ(data.LiveRows(), (std::vector<int>{0, 2}));
  EXPECT_DOUBLE_EQ(data.at(1, 1), 1.0);  // Still addressable.

  EXPECT_EQ(data.ErasePoints({1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(data.ErasePoints({7}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(data.ErasePoints({0, 0}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(data.live_size(), 2u);
}

TEST(DatasetDynamicTest, AppendAfterEraseKeepsLivenessAligned) {
  Dataset data = MakeDataset({{1, 0}, {0, 1}});
  ASSERT_TRUE(data.ErasePoints({0}).ok());
  ASSERT_TRUE(data.AppendRows({{0.7, 0.7}}, {{}}).ok());
  EXPECT_FALSE(data.live(0));
  EXPECT_TRUE(data.live(2));
  EXPECT_EQ(data.LiveRows(), (std::vector<int>{1, 2}));
}

TEST(DatasetDynamicTest, NormalizationIgnoresErasedRows) {
  Dataset data = MakeDataset({{10, 1}, {2, 2}, {4, 4}});
  ASSERT_TRUE(data.ErasePoints({0}).ok());  // The per-column extremes.
  const Dataset norm = data.NormalizedMinMax();
  // Live rows span [2,4] x [2,4]; the erased outlier must not stretch it.
  EXPECT_DOUBLE_EQ(norm.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(norm.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(norm.at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(norm.at(2, 1), 1.0);
  EXPECT_FALSE(norm.live(0));  // Tombstones carry over.

  const Dataset scaled = data.ScaledByMax();
  EXPECT_DOUBLE_EQ(scaled.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(scaled.at(1, 0), 0.5);
}

TEST(GroupingLiveTest, LiveCountsAndMembersExcludeErased) {
  Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.5, 0.5}, {0.2, 0.2}});
  const Grouping g = MakeGrouping({0, 1, 0, 1}, 2);
  EXPECT_EQ(g.LiveCounts(data), g.Counts());
  EXPECT_EQ(g.MembersLive(data), g.Members());

  ASSERT_TRUE(data.ErasePoints({2, 3}).ok());
  EXPECT_EQ(g.LiveCounts(data), (std::vector<int>{1, 1}));
  EXPECT_EQ(g.MembersLive(data),
            (std::vector<std::vector<int>>{{0}, {1}}));
  EXPECT_EQ(g.Counts(), (std::vector<int>{2, 2}));  // Raw view unchanged.
}

TEST(GroupingLiveTest, AppendRowAndAddGroupBumpVersion) {
  Grouping g = MakeGrouping({0, 0}, 1);
  const uint64_t v0 = g.version;
  g.AppendRow(0);
  EXPECT_GT(g.version, v0);
  const int added = g.AddGroup("new");
  EXPECT_EQ(added, 1);
  EXPECT_EQ(g.num_groups, 2);
  EXPECT_EQ(g.names.back(), "new");
}

TEST(SkylineLiveTest, ErasedRowsLeaveAndReexposeTheSkyline) {
  // Row 0 dominates row 2; erasing 0 must re-expose 2, and erased rows
  // must never be returned even when passed in explicitly.
  Dataset data = MakeDataset({{1, 1}, {0, 1}, {0.5, 0.5}});
  EXPECT_EQ(ComputeSkyline(data), (std::vector<int>{0}));
  ASSERT_TRUE(data.ErasePoints({0}).ok());
  EXPECT_EQ(ComputeSkyline(data), (std::vector<int>{1, 2}));
  EXPECT_EQ(ComputeSkyline(data, std::vector<int>{0, 1, 2}),
            (std::vector<int>{1, 2}));
  ASSERT_TRUE(data.ErasePoints({1, 2}).ok());
  EXPECT_TRUE(ComputeSkyline(data).empty());
}

}  // namespace
}  // namespace fairhms
