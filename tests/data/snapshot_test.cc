// Binary snapshot format: round trips are bit-identical (table, tombstone
// state, categorical columns, grouping, insert-routing provenance and the
// maintained skyline state), and every corruption class is strict-rejected
// with its typed Status — truncation and bit flips as IOError, non-snapshot
// bytes as InvalidArgument, future format versions as Unimplemented,
// structurally invalid payloads (resealed checksums included) as
// InvalidArgument — without crashing or partially constructing.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "api/catalog.h"
#include "api/session.h"
#include "api/solver.h"
#include "common/random.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "data/snapshot.h"
#include "fairness/group_bounds.h"
#include "skyline/incremental.h"

namespace fairhms {
namespace {

/// A serving state that exercises every snapshot section: categorical
/// provenance grouping, inserts that opened a new group, tombstones (one
/// emptying that whole combination, so its route survives only through the
/// serialized combination table) and a maintained skyline index.
struct Served {
  std::unique_ptr<Dataset> data;
  std::unique_ptr<Grouping> grouping;
  std::unique_ptr<SolverSession> session;
};

std::unique_ptr<Served> MakeServed() {
  auto served = std::make_unique<Served>();
  served->data = std::make_unique<Dataset>(3);
  served->data->AddCategoricalColumn("region", {"north", "south"});
  Rng rng(7);
  for (int i = 0; i < 40; ++i) {
    served->data->AddRow({rng.Uniform(), rng.Uniform(), rng.Uniform()},
                         {i % 2});
  }
  served->grouping = std::make_unique<Grouping>(
      GroupByCategoricalProduct(*served->data, {"region"}).value());
  auto session = SolverSession::CreateDynamic(served->data.get(),
                                              served->grouping.get(),
                                              {"region"});
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  served->session = std::make_unique<SolverSession>(std::move(*session));
  served->data->AddCategoricalLabel(0, "west");
  EXPECT_TRUE(served->session->Insert({0.9, 0.1, 0.4}, {2}).ok());
  EXPECT_TRUE(served->session->Insert({0.2, 0.8, 0.6}, {0}).ok());
  // Row 40 is the only "west" row: erasing it empties that group.
  EXPECT_TRUE(served->session->Erase({1, 3, 40}).ok());
  EXPECT_TRUE(served->session->EnsureIndex().ok());
  return served;
}

Snapshot MakeSnapshot(Served* served) {
  auto snapshot = SnapshotSession(served->session.get());
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return std::move(*snapshot);
}

void ExpectDatasetsEqual(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.dim(), b.dim());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.live_size(), b.live_size());
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.attr_names(), b.attr_names());
  EXPECT_EQ(a.LiveRows(), b.LiveRows());
  for (size_t i = 0; i < a.size(); ++i) {
    for (int j = 0; j < a.dim(); ++j) {
      // Bit-identity, not approximation: serialized doubles round-trip raw.
      EXPECT_EQ(a.at(i, j), b.at(i, j)) << "row " << i << " dim " << j;
    }
  }
  ASSERT_EQ(a.num_categorical(), b.num_categorical());
  for (int c = 0; c < a.num_categorical(); ++c) {
    EXPECT_EQ(a.categorical(c).name, b.categorical(c).name);
    EXPECT_EQ(a.categorical(c).labels, b.categorical(c).labels);
    EXPECT_EQ(a.categorical(c).codes, b.categorical(c).codes);
  }
}

void ExpectStatesEqual(const IncrementalSkylineState& a,
                       const IncrementalSkylineState& b) {
  EXPECT_EQ(a.skyline, b.skyline);
  EXPECT_EQ(a.dominated, b.dominated);
}

TEST(SnapshotTest, RoundTripIsBitIdentical) {
  auto served = MakeServed();
  const Snapshot snapshot = MakeSnapshot(served.get());

  const std::string bytes = SerializeSnapshot(snapshot);
  auto parsed = ParseSnapshot(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  ExpectDatasetsEqual(snapshot.data, parsed->data);
  EXPECT_EQ(snapshot.grouping.group_of, parsed->grouping.group_of);
  EXPECT_EQ(snapshot.grouping.num_groups, parsed->grouping.num_groups);
  EXPECT_EQ(snapshot.grouping.names, parsed->grouping.names);
  EXPECT_EQ(snapshot.grouping.version, parsed->grouping.version);
  EXPECT_EQ(snapshot.group_columns, parsed->group_columns);
  EXPECT_EQ(snapshot.combo_to_group, parsed->combo_to_group);
  ASSERT_TRUE(parsed->has_index);
  ExpectStatesEqual(snapshot.index.global, parsed->index.global);
  ASSERT_EQ(snapshot.index.per_group.size(), parsed->index.per_group.size());
  for (size_t g = 0; g < snapshot.index.per_group.size(); ++g) {
    ExpectStatesEqual(snapshot.index.per_group[g], parsed->index.per_group[g]);
  }

  // Serialization is deterministic: same state, same bytes.
  EXPECT_EQ(bytes, SerializeSnapshot(*parsed));
}

TEST(SnapshotTest, FileRoundTripAndMissingFile) {
  auto served = MakeServed();
  const Snapshot snapshot = MakeSnapshot(served.get());

  const std::string path = ::testing::TempDir() + "fairhms_snapshot_rt.snap";
  ASSERT_TRUE(WriteSnapshotFile(snapshot, path).ok());
  auto read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(SerializeSnapshot(snapshot), SerializeSnapshot(*read));
  std::remove(path.c_str());

  auto missing = ReadSnapshotFile(path + ".does_not_exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, TruncationRejectedAsIOError) {
  auto served = MakeServed();
  const std::string bytes = SerializeSnapshot(MakeSnapshot(served.get()));

  // Every strict prefix must be rejected; spot-check the interesting
  // boundaries: empty, mid-header, header-only, mid-payload, one short.
  for (const size_t len :
       {size_t{0}, size_t{10}, kSnapshotPayloadOffset, bytes.size() / 2,
        bytes.size() - 1}) {
    auto parsed = ParseSnapshot(std::string_view(bytes).substr(0, len));
    ASSERT_FALSE(parsed.ok()) << "prefix length " << len;
    EXPECT_EQ(parsed.status().code(), StatusCode::kIOError)
        << "prefix length " << len << ": " << parsed.status().ToString();
  }
}

TEST(SnapshotTest, BadMagicRejectedAsInvalidArgument) {
  auto served = MakeServed();
  std::string bytes = SerializeSnapshot(MakeSnapshot(served.get()));
  bytes[kSnapshotMagicOffset] = 'X';
  auto parsed = ParseSnapshot(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, BitFlipAnywhereRejectedAsIOError) {
  auto served = MakeServed();
  const std::string clean = SerializeSnapshot(MakeSnapshot(served.get()));

  // Flip one bit at a spread of positions across header-after-magic (a
  // magic flip is InvalidArgument, tested above), payload and trailer; the
  // CRC — or, for the payload-size field, the length cross-check — must
  // catch every one of them before any payload byte is interpreted.
  for (size_t pos = kSnapshotVersionOffset; pos < clean.size();
       pos += clean.size() / 13 + 1) {
    std::string bytes = clean;
    bytes[pos] = static_cast<char>(bytes[pos] ^ 0x20);
    auto parsed = ParseSnapshot(bytes);
    ASSERT_FALSE(parsed.ok()) << "bit flip at " << pos << " was accepted";
    EXPECT_EQ(parsed.status().code(), StatusCode::kIOError)
        << "bit flip at " << pos << ": " << parsed.status().ToString();
  }
}

/// Overwrites the u32 at `offset` and reseals the CRC trailer, so the
/// parser's verdict is about the patched field, not the checksum.
std::string PatchU32AndReseal(std::string bytes, size_t offset,
                              uint32_t value) {
  for (size_t i = 0; i < 4; ++i) {
    bytes[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  for (size_t i = 0; i < 4; ++i) {
    bytes[bytes.size() - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFFu);
  }
  return bytes;
}

TEST(SnapshotTest, FutureFormatVersionRejectedAsUnimplemented) {
  auto served = MakeServed();
  const std::string bytes =
      PatchU32AndReseal(SerializeSnapshot(MakeSnapshot(served.get())),
                        kSnapshotVersionOffset, kSnapshotFormatVersion + 1);
  auto parsed = ParseSnapshot(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kUnimplemented);
}

TEST(SnapshotTest, WrongDimensionPayloadRejectedAsInvalidArgument) {
  auto served = MakeServed();
  // The payload's first field is the dataset dimension; inflating it (CRC
  // resealed, so the reject is structural) desynchronizes every following
  // section — the parser must fail cleanly, not crash or misparse.
  const std::string bytes =
      PatchU32AndReseal(SerializeSnapshot(MakeSnapshot(served.get())),
                        kSnapshotPayloadOffset, 64);
  auto parsed = ParseSnapshot(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, StructurallyInvalidStatesRejectedAsInvalidArgument) {
  auto served = MakeServed();
  const Snapshot base = MakeSnapshot(served.get());

  {
    // Group id out of range.
    Snapshot bad = base;
    bad.grouping.group_of[0] = bad.grouping.num_groups + 3;
    auto parsed = ParseSnapshot(SerializeSnapshot(bad));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Grouping that does not cover the table.
    Snapshot bad = base;
    Dataset smaller(3);
    smaller.AddCategoricalColumn("region", {"north"});
    smaller.AddRow({0.1, 0.2, 0.3}, {0});
    bad.data = std::move(smaller);
    auto parsed = ParseSnapshot(SerializeSnapshot(bad));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Combination arity disagreeing with the group-column count.
    Snapshot bad = base;
    bad.combo_to_group.push_back({{0, 1}, 0});
    auto parsed = ParseSnapshot(SerializeSnapshot(bad));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Unknown group-column name.
    Snapshot bad = base;
    bad.group_columns = {"no_such_column"};
    bad.combo_to_group.clear();
    auto parsed = ParseSnapshot(SerializeSnapshot(bad));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Skyline state referencing a dead row: SkylineIndex::Restore is the
    // validating layer for row-level index state (ParseSnapshot checks
    // structure, Restore checks coverage against the table).
    Snapshot parsed = ParseSnapshot(SerializeSnapshot(base)).value();
    SkylineIndexState state = parsed.index;
    ASSERT_FALSE(state.global.skyline.empty());
    state.global.skyline.back() = 1;  // Row 1 was tombstoned in MakeServed.
    auto restored =
        SkylineIndex::Restore(&parsed.data, &parsed.grouping, state);
    ASSERT_FALSE(restored.ok());
    EXPECT_EQ(restored.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SnapshotTest, FailedCatalogLoadNeverPartiallyMutates) {
  auto served = MakeServed();
  const Snapshot snapshot = MakeSnapshot(served.get());
  const std::string dir = ::testing::TempDir();
  const std::string good_path = dir + "fairhms_snapshot_good.snap";
  const std::string bad_path = dir + "fairhms_snapshot_bad.snap";
  ASSERT_TRUE(WriteSnapshotFile(snapshot, good_path).ok());
  {
    // A truncated copy of a valid snapshot.
    const std::string bytes = SerializeSnapshot(snapshot);
    std::FILE* f = std::fopen(bad_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() - 12, f);
    std::fclose(f);
  }

  DatasetCatalog catalog;
  ASSERT_TRUE(catalog.Load("good", good_path).ok());
  const uint64_t version_before = catalog.version();

  EXPECT_FALSE(catalog.Load("bad", bad_path).ok());
  EXPECT_FALSE(catalog.Load("good", good_path).ok());  // Duplicate name.
  EXPECT_EQ(catalog.version(), version_before);
  EXPECT_EQ(catalog.List(), std::vector<std::string>{"good"});

  // The surviving entry still serves.
  SolverRequest request;
  request.algorithm = "rdp_greedy";
  request.bounds = GroupBounds::Proportional(
      4, snapshot.grouping.LiveCounts(snapshot.data), 0.5);
  request.threads = 1;
  auto result = catalog.Solve("good", request);
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

}  // namespace
}  // namespace fairhms
