#include "skyline/skyline.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::BruteForceSkyline;
using testing::MakeDataset;
using testing::MakeGrouping;

TEST(SkylineTest, Simple2D) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.5, 0.5}, {0.4, 0.4}});
  const auto sky = ComputeSkyline(data);
  EXPECT_EQ(sky, (std::vector<int>{0, 1, 2}));
}

TEST(SkylineTest, DuplicatesKept) {
  const Dataset data = MakeDataset({{1, 1}, {1, 1}, {0.5, 0.5}});
  const auto sky = ComputeSkyline(data);
  EXPECT_EQ(sky, (std::vector<int>{0, 1}));
}

TEST(SkylineTest, EqualXTies2D) {
  const Dataset data = MakeDataset({{0.5, 0.9}, {0.5, 0.8}, {0.5, 0.9}});
  const auto sky = ComputeSkyline(data);
  EXPECT_EQ(sky, (std::vector<int>{0, 2}));
}

TEST(SkylineTest, SinglePoint) {
  const Dataset data = MakeDataset({{0.3, 0.3}});
  EXPECT_EQ(ComputeSkyline(data), (std::vector<int>{0}));
}

TEST(SkylineTest, EmptyRows) {
  const Dataset data = MakeDataset({{0.3, 0.3}});
  EXPECT_TRUE(ComputeSkyline(data, std::vector<int>{}).empty());
}

TEST(SkylineTest, Random2DMatchesBruteForce) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Dataset data = GenIndependent(200, 2, &rng);
    std::vector<int> rows(200);
    std::iota(rows.begin(), rows.end(), 0);
    auto fast = ComputeSkyline(data);
    auto brute = BruteForceSkyline(data, rows);
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(fast, brute) << "trial " << trial;
  }
}

TEST(SkylineTest, RandomMdMatchesBruteForce) {
  Rng rng(13);
  for (int d = 3; d <= 6; ++d) {
    const Dataset data = GenIndependent(150, d, &rng);
    std::vector<int> rows(150);
    std::iota(rows.begin(), rows.end(), 0);
    auto fast = ComputeSkyline(data);
    auto brute = BruteForceSkyline(data, rows);
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(fast, brute) << "d=" << d;
  }
}

TEST(SkylineTest, AntiCorrelatedMatchesBruteForce) {
  Rng rng(17);
  const Dataset data = GenAntiCorrelated(150, 3, &rng);
  std::vector<int> rows(150);
  std::iota(rows.begin(), rows.end(), 0);
  auto fast = ComputeSkyline(data);
  auto brute = BruteForceSkyline(data, rows);
  std::sort(brute.begin(), brute.end());
  EXPECT_EQ(fast, brute);
}

TEST(SkylineTest, SubsetOfRowsOnly) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.9, 0.9}, {0.1, 0.1}});
  // Restricted to rows {0, 3}: both survive within the subset.
  const auto sky = ComputeSkyline(data, std::vector<int>{0, 3});
  EXPECT_EQ(sky, (std::vector<int>{0, 3}));
}

TEST(SkylineTest, PrefilterModeReturnsSuperset) {
  Rng rng(19);
  const Dataset data = GenIndependent(6000, 4, &rng);
  SkylineOptions approx;
  approx.exact = false;
  approx.prefilter_sample = 512;
  const auto superset = ComputeSkyline(data, approx);
  const auto exact = ComputeSkyline(data);
  // Superset contains the whole skyline.
  EXPECT_TRUE(std::includes(superset.begin(), superset.end(), exact.begin(),
                            exact.end()));
  // And the prefilter did remove a substantial share of dominated points.
  EXPECT_LT(superset.size(), data.size());
}

TEST(SkylineTest, GroupSkylinesMatchBruteForcePerGroup) {
  Rng rng(29);
  const Dataset data = GenIndependent(300, 3, &rng);
  const Grouping g = GroupBySumRank(data, 3);
  const auto skys = ComputeGroupSkylines(data, g);
  const auto members = g.Members();
  for (int c = 0; c < 3; ++c) {
    auto brute = BruteForceSkyline(data, members[static_cast<size_t>(c)]);
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(skys[static_cast<size_t>(c)], brute) << "group " << c;
  }
}

TEST(SkylineTest, GroupSkylinesExact) {
  const Dataset data =
      MakeDataset({{1, 0}, {0.9, 0.1}, {0.8, 0.05}, {0, 1}, {0.1, 0.9}});
  const Grouping g = MakeGrouping({0, 0, 0, 1, 1}, 2);
  const auto skys = ComputeGroupSkylines(data, g);
  ASSERT_EQ(skys.size(), 2u);
  // (0.8,0.05) is dominated by (0.9,0.1) within group 0.
  EXPECT_EQ(skys[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(skys[1], (std::vector<int>{3, 4}));
}

TEST(SkylineTest, FairPoolContainsGlobalSkyline) {
  Rng rng(23);
  const Dataset data = GenIndependent(500, 3, &rng);
  const Grouping g = GroupBySumRank(data, 4);
  const auto pool = ComputeFairCandidatePool(data, g);
  const auto global = ComputeSkyline(data);
  EXPECT_TRUE(
      std::includes(pool.begin(), pool.end(), global.begin(), global.end()));
}

TEST(SkylineTest, FairPoolMayExceedGlobalSkyline) {
  // A globally dominated point that is its group's best must be in the pool.
  const Dataset data = MakeDataset({{1, 1}, {0.5, 0.5}});
  const Grouping g = MakeGrouping({0, 1}, 2);
  const auto pool = ComputeFairCandidatePool(data, g);
  EXPECT_EQ(pool, (std::vector<int>{0, 1}));
  EXPECT_EQ(ComputeSkyline(data), (std::vector<int>{0}));
}

}  // namespace
}  // namespace fairhms
