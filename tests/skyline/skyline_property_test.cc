// Adversarial property coverage for ComputeSkyline: the production paths
// (2D duplicate-block sweep; sum-sorted BNL behind the sample-elite
// prefilter) against the O(n^2) dominance oracle, over randomized datasets
// salted with the inputs that historically break skyline codes — exact
// duplicates, equal-coordinate-sum ties (the BNL's sort key) and equal-x
// blocks (the 2D sweep's block logic) — for d in {2, 3, 5}.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/dataset.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::BruteForceSkyline;

/// A dataset engineered to stress every tie-handling branch: random base
/// points, exact duplicates, equal-sum siblings (coordinates permuted so
/// the BNL's sum order cannot separate them) and shared-x points.
Dataset MakeAdversarialDataset(size_t n_base, int dim, Rng* rng) {
  Dataset data(dim);
  std::vector<double> coords(static_cast<size_t>(dim));
  for (size_t i = 0; i < n_base; ++i) {
    for (int j = 0; j < dim; ++j) {
      // A coarse grid makes coordinate collisions (and thus weak-dominance
      // edge cases) common instead of measure-zero.
      coords[static_cast<size_t>(j)] =
          static_cast<double>(rng->UniformInt(8)) / 7.0;
    }
    data.AddPoint(coords);
  }
  const size_t n = data.size();
  for (size_t i = 0; i < n; ++i) {
    const uint64_t dice = rng->UniformInt(10);
    if (dice == 0) {
      // Exact duplicate.
      for (int j = 0; j < dim; ++j) coords[static_cast<size_t>(j)] = data.at(i, j);
      data.AddPoint(coords);
    } else if (dice == 1) {
      // Equal-sum sibling: rotate the coordinates one position.
      for (int j = 0; j < dim; ++j) {
        coords[static_cast<size_t>(j)] = data.at(i, (j + 1) % dim);
      }
      data.AddPoint(coords);
    } else if (dice == 2) {
      // Same first coordinate, fresh tail (2D equal-x blocks).
      coords[0] = data.at(i, 0);
      for (int j = 1; j < dim; ++j) {
        coords[static_cast<size_t>(j)] =
            static_cast<double>(rng->UniformInt(8)) / 7.0;
      }
      data.AddPoint(coords);
    }
  }
  return data;
}

TEST(SkylinePropertyTest, MatchesBruteForceOracle) {
  Rng rng(0xABCDEF);
  for (const int dim : {2, 3, 5}) {
    for (int trial = 0; trial < 12; ++trial) {
      const Dataset data = MakeAdversarialDataset(160, dim, &rng);
      std::vector<int> rows(data.size());
      std::iota(rows.begin(), rows.end(), 0);
      std::vector<int> oracle = BruteForceSkyline(data, rows);
      std::sort(oracle.begin(), oracle.end());

      // Default path (prefilter disabled below its size threshold for
      // these n, but the production entry point is what's under test).
      EXPECT_EQ(ComputeSkyline(data), oracle)
          << "d=" << dim << " trial=" << trial;

      if (dim >= 3) {
        // Force the elite prefilter to actually run: a tiny sample must
        // never change the exact result, only shrink the BNL's input.
        SkylineOptions opts;
        opts.prefilter_sample = 16;
        opts.seed = 0x5EED + static_cast<uint64_t>(trial);
        EXPECT_EQ(ComputeSkyline(data, rows, opts), oracle)
            << "d=" << dim << " trial=" << trial << " (prefiltered)";
      }
    }
  }
}

TEST(SkylinePropertyTest, AllPointsIdentical) {
  for (const int dim : {2, 3, 5}) {
    Dataset data(dim);
    const std::vector<double> p(static_cast<size_t>(dim), 0.5);
    for (int i = 0; i < 6; ++i) data.AddPoint(p);
    // No point dominates an exact copy: everything survives.
    EXPECT_EQ(ComputeSkyline(data), (std::vector<int>{0, 1, 2, 3, 4, 5}));
  }
}

TEST(SkylinePropertyTest, EqualSumChainIsMutuallyIncomparable) {
  // All permutations of (0.9, 0.5, 0.1): identical sums, none dominates.
  Dataset data(3);
  const double v[3] = {0.9, 0.5, 0.1};
  int perm[3] = {0, 1, 2};
  std::sort(perm, perm + 3);
  do {
    data.AddPoint({v[perm[0]], v[perm[1]], v[perm[2]]});
  } while (std::next_permutation(perm, perm + 3));
  const auto sky = ComputeSkyline(data);
  EXPECT_EQ(sky.size(), data.size());
}

}  // namespace
}  // namespace fairhms
