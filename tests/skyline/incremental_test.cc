// The dynamic-update subsystem's hard oracle: after EVERY insert and
// delete, the incrementally maintained state (global skyline, per-group
// skylines, fair candidate pool, live group tables) must be bit-identical
// to recomputing everything from scratch on the mutated dataset. The
// randomized churn suites run > 1k interleaved ops across dimensions and
// churn-threshold settings (including one that forces frequent full
// rebuilds, so the fallback path is held to the same oracle).

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "skyline/incremental.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;
using testing::MakeGrouping;

TEST(IncrementalSkylineTest, InsertDominatedAndDominating) {
  Dataset data = MakeDataset({{0.5, 0.5}, {0.2, 0.95}});
  IncrementalSkyline sky(&data);
  sky.Reset({0, 1});
  EXPECT_EQ(sky.skyline(), (std::vector<int>{0, 1}));

  ASSERT_TRUE(data.AppendRows({{0.3, 0.3}}, {{}}).ok());  // Dominated.
  sky.Insert(2);
  EXPECT_EQ(sky.skyline(), (std::vector<int>{0, 1}));

  ASSERT_TRUE(data.AppendRows({{0.9, 0.9}}, {{}}).ok());  // Dominates 0, 2.
  sky.Insert(3);
  EXPECT_EQ(sky.skyline(), (std::vector<int>{1, 3}));
  EXPECT_EQ(sky.universe_size(), 4u);
}

TEST(IncrementalSkylineTest, EraseRepromotesTransitiveChains) {
  // 3 dominates 0 dominates 1 and 2; erasing 3 re-exposes 0, then erasing
  // 0 re-exposes 1 and 2 (which do not dominate each other).
  Dataset data =
      MakeDataset({{0.5, 0.5}, {0.4, 0.1}, {0.1, 0.4}, {0.9, 0.9}});
  IncrementalSkyline sky(&data);
  sky.Reset({0, 1, 2, 3});
  EXPECT_EQ(sky.skyline(), (std::vector<int>{3}));

  ASSERT_TRUE(sky.Erase(3).ok());
  EXPECT_EQ(sky.skyline(), (std::vector<int>{0}));
  ASSERT_TRUE(sky.Erase(0).ok());
  EXPECT_EQ(sky.skyline(), (std::vector<int>{1, 2}));
  ASSERT_TRUE(sky.Erase(1).ok());
  ASSERT_TRUE(sky.Erase(2).ok());
  EXPECT_TRUE(sky.skyline().empty());
  EXPECT_EQ(sky.universe_size(), 0u);

  EXPECT_EQ(sky.Erase(3).code(), StatusCode::kNotFound);
}

TEST(IncrementalSkylineTest, DuplicatesSurviveEachOther) {
  Dataset data = MakeDataset({{0.7, 0.7}, {0.7, 0.7}, {0.1, 0.1}});
  IncrementalSkyline sky(&data);
  sky.Reset({0, 1, 2});
  EXPECT_EQ(sky.skyline(), (std::vector<int>{0, 1}));
  ASSERT_TRUE(sky.Erase(0).ok());
  EXPECT_EQ(sky.skyline(), (std::vector<int>{1}));
}

/// One deterministic churn schedule: starting from `n0` rows, interleave
/// `ops` random inserts/deletes/no-op queries and hold the SkylineIndex to
/// the full-recompute oracle after every single step.
void RunChurnOracle(int n0, int dim, int groups, int ops, uint64_t seed,
                    double churn_rebuild_factor, bool expect_rebuilds) {
  Rng rng(seed);
  Dataset data = GenIndependent(static_cast<size_t>(n0), dim, &rng)
                     .NormalizedMinMax();
  Grouping grouping = GroupBySumRank(data, groups);

  IncrementalSkylineOptions opts;
  opts.churn_rebuild_factor = churn_rebuild_factor;
  SkylineIndex index(&data, &grouping, opts);

  auto check = [&](int step) {
    ASSERT_EQ(index.skyline(), ComputeSkyline(data)) << "step " << step;
    ASSERT_EQ(index.group_skylines(), ComputeGroupSkylines(data, grouping))
        << "step " << step;
    ASSERT_EQ(index.fair_pool(), ComputeFairCandidatePool(data, grouping))
        << "step " << step;
    ASSERT_EQ(index.live_counts(), grouping.LiveCounts(data))
        << "step " << step;
    ASSERT_EQ(index.live_members(), grouping.MembersLive(data))
        << "step " << step;
    ASSERT_EQ(index.data_version(), data.version()) << "step " << step;
  };
  check(-1);

  for (int step = 0; step < ops; ++step) {
    const uint64_t dice = rng.UniformInt(100);
    if (dice < 55 || data.live_size() < 8) {
      // Insert: mostly fresh random points, sometimes an exact duplicate
      // of a live row (skylines keep duplicates; the maintainer must too).
      std::vector<double> coords(static_cast<size_t>(dim));
      const std::vector<int> live = data.LiveRows();
      if (dice % 7 == 0 && !live.empty()) {
        const int src = live[rng.UniformInt(live.size())];
        for (int j = 0; j < dim; ++j) {
          coords[static_cast<size_t>(j)] = data.at(static_cast<size_t>(src), j);
        }
      } else {
        for (int j = 0; j < dim; ++j) {
          coords[static_cast<size_t>(j)] = rng.Uniform();
        }
      }
      const int group = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(groups)));
      auto first = data.AppendRows({coords}, {{}});
      ASSERT_TRUE(first.ok()) << first.status().ToString();
      grouping.AppendRow(group);
      ASSERT_TRUE(index.OnAppend(static_cast<size_t>(*first), data.size()).ok());
    } else {
      // Delete 1-3 random live rows — sometimes skyline points (the
      // interesting re-promotion case), sometimes dominated ones.
      const std::vector<int> live = data.LiveRows();
      const size_t want = 1 + static_cast<size_t>(rng.UniformInt(3));
      std::vector<int> doomed;
      for (size_t t = 0; t < want && doomed.size() < live.size(); ++t) {
        const int row = live[rng.UniformInt(live.size())];
        if (std::find(doomed.begin(), doomed.end(), row) == doomed.end()) {
          doomed.push_back(row);
        }
      }
      ASSERT_TRUE(data.ErasePoints(doomed).ok());
      ASSERT_TRUE(index.OnErase(doomed).ok());
    }
    check(step);
  }
  if (expect_rebuilds) {
    EXPECT_GT(index.rebuilds(), 0u) << "churn threshold never fired";
  }
}

TEST(SkylineIndexChurnTest, Random2DThousandOps) {
  RunChurnOracle(/*n0=*/150, /*dim=*/2, /*groups=*/3, /*ops=*/1000,
                 /*seed=*/7, /*churn_rebuild_factor=*/8.0,
                 /*expect_rebuilds=*/false);
}

TEST(SkylineIndexChurnTest, Random4D) {
  RunChurnOracle(/*n0=*/200, /*dim=*/4, /*groups=*/4, /*ops=*/400,
                 /*seed=*/11, /*churn_rebuild_factor=*/8.0,
                 /*expect_rebuilds=*/false);
}

TEST(SkylineIndexChurnTest, Random6DHighChurnForcesRebuilds) {
  // A tiny threshold forces the full-recompute fallback to fire many
  // times mid-stream; the oracle holds across the rebuild boundary.
  RunChurnOracle(/*n0=*/120, /*dim=*/6, /*groups=*/3, /*ops=*/300,
                 /*seed=*/13, /*churn_rebuild_factor=*/0.05,
                 /*expect_rebuilds=*/true);
}

TEST(SkylineIndexChurnTest, RebuildsDisabled) {
  RunChurnOracle(/*n0=*/100, /*dim=*/3, /*groups=*/2, /*ops=*/200,
                 /*seed=*/17, /*churn_rebuild_factor=*/0.0,
                 /*expect_rebuilds=*/false);
}

TEST(SkylineIndexTest, NewGroupsJoinTheIndex) {
  Dataset data = MakeDataset({{0.4, 0.4}, {0.6, 0.2}});
  Grouping grouping = MakeGrouping({0, 0}, 1);
  SkylineIndex index(&data, &grouping);
  ASSERT_EQ(index.group_skylines().size(), 1u);

  ASSERT_TRUE(data.AppendRows({{0.1, 0.9}}, {{}}).ok());
  const int g = grouping.AddGroup("late");
  grouping.AppendRow(g);
  ASSERT_TRUE(index.OnAppend(2, 3).ok());

  EXPECT_EQ(index.group_skylines(),
            ComputeGroupSkylines(data, grouping));
  EXPECT_EQ(index.live_counts(), (std::vector<int>{2, 1}));
  EXPECT_EQ(index.fair_pool(), ComputeFairCandidatePool(data, grouping));
}

TEST(IncrementalSkylineTest, SaveRestoreStateRoundTrip) {
  Dataset data =
      MakeDataset({{0.5, 0.5}, {0.4, 0.1}, {0.1, 0.4}, {0.9, 0.9}});
  IncrementalSkyline sky(&data);
  sky.Reset({0, 1, 2, 3});
  ASSERT_TRUE(sky.Erase(3).ok());  // Re-promotes 0; 1, 2 stay dominated.
  ASSERT_TRUE(data.ErasePoints({3}).ok());
  const IncrementalSkylineState state = sky.SaveState();

  IncrementalSkyline restored(&data);
  ASSERT_TRUE(restored.RestoreState(state).ok());
  EXPECT_EQ(restored.skyline(), sky.skyline());
  EXPECT_EQ(restored.universe_size(), sky.universe_size());
  const IncrementalSkylineState after = restored.SaveState();
  EXPECT_EQ(after.skyline, state.skyline);
  EXPECT_EQ(after.dominated, state.dominated);

  // A state referencing a dead row is rejected without touching the
  // structure (row 3 was erased above).
  IncrementalSkylineState dead = state;
  dead.skyline.push_back(3);
  EXPECT_EQ(restored.RestoreState(dead).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(restored.skyline(), sky.skyline());

  // So is one listing a row twice across the universe.
  IncrementalSkylineState dup = state;
  dup.dominated.push_back({state.skyline.front(), state.skyline.front()});
  EXPECT_EQ(restored.RestoreState(dup).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(restored.skyline(), sky.skyline());
}

TEST(SkylineIndexTest, RestoredIndexMatchesOriginalAndMutatesIdentically) {
  // Build an index through real churn, export it, restore it against a
  // copy of the table — then drive BOTH through the same mutation stream.
  // A restored index must be indistinguishable from one that never left
  // the process, after every subsequent op.
  Rng rng(23);
  Dataset data = GenIndependent(80, 3, &rng).NormalizedMinMax();
  Grouping grouping = GroupBySumRank(data, 3);
  SkylineIndex index(&data, &grouping);
  ASSERT_TRUE(data.ErasePoints({2, 5, 9}).ok());
  ASSERT_TRUE(index.OnErase({2, 5, 9}).ok());

  const SkylineIndexState state = index.SaveState();
  Dataset data2 = data;
  Grouping grouping2 = grouping;
  auto restored = SkylineIndex::Restore(&data2, &grouping2, state);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  auto expect_equal = [&](int step) {
    ASSERT_EQ((*restored)->skyline(), index.skyline()) << "step " << step;
    ASSERT_EQ((*restored)->group_skylines(), index.group_skylines())
        << "step " << step;
    ASSERT_EQ((*restored)->fair_pool(), index.fair_pool()) << "step " << step;
    ASSERT_EQ((*restored)->live_counts(), index.live_counts())
        << "step " << step;
    const SkylineIndexState a = index.SaveState();
    const SkylineIndexState b = (*restored)->SaveState();
    ASSERT_EQ(a.global.skyline, b.global.skyline) << "step " << step;
    ASSERT_EQ(a.global.dominated, b.global.dominated) << "step " << step;
    ASSERT_EQ(a.per_group.size(), b.per_group.size()) << "step " << step;
    for (size_t g = 0; g < a.per_group.size(); ++g) {
      ASSERT_EQ(a.per_group[g].skyline, b.per_group[g].skyline)
          << "step " << step << " group " << g;
      ASSERT_EQ(a.per_group[g].dominated, b.per_group[g].dominated)
          << "step " << step << " group " << g;
    }
  };
  expect_equal(-1);

  for (int step = 0; step < 60; ++step) {
    if (rng.UniformInt(100) < 60 || data.live_size() < 8) {
      std::vector<double> coords = {rng.Uniform(), rng.Uniform(),
                                    rng.Uniform()};
      const int group = static_cast<int>(rng.UniformInt(3));
      for (auto [d, g, idx] :
           {std::tuple<Dataset*, Grouping*, SkylineIndex*>{&data, &grouping,
                                                           &index},
            std::tuple<Dataset*, Grouping*, SkylineIndex*>{
                &data2, &grouping2, restored->get()}}) {
        auto first = d->AppendRows({coords}, {{}});
        ASSERT_TRUE(first.ok());
        g->AppendRow(group);
        ASSERT_TRUE(idx->OnAppend(static_cast<size_t>(*first), d->size()).ok());
      }
    } else {
      const std::vector<int> live = data.LiveRows();
      const int row = live[rng.UniformInt(live.size())];
      ASSERT_TRUE(data.ErasePoints({row}).ok());
      ASSERT_TRUE(index.OnErase({row}).ok());
      ASSERT_TRUE(data2.ErasePoints({row}).ok());
      ASSERT_TRUE((*restored)->OnErase({row}).ok());
    }
    expect_equal(step);
  }
  // And the oracle still holds for the restored side on its own table.
  EXPECT_EQ((*restored)->skyline(), ComputeSkyline(data2));
  EXPECT_EQ((*restored)->group_skylines(),
            ComputeGroupSkylines(data2, grouping2));
}

TEST(SkylineIndexTest, GroupEmptiedByDeletesKeepsEmptySkyline) {
  Dataset data = MakeDataset({{0.4, 0.4}, {0.6, 0.2}, {0.2, 0.6}});
  Grouping grouping = MakeGrouping({0, 1, 1}, 2);
  SkylineIndex index(&data, &grouping);
  ASSERT_TRUE(data.ErasePoints({1, 2}).ok());
  ASSERT_TRUE(index.OnErase({1, 2}).ok());
  EXPECT_EQ(index.live_counts(), (std::vector<int>{1, 0}));
  EXPECT_TRUE(index.group_skylines()[1].empty());
  EXPECT_EQ(index.skyline(), ComputeSkyline(data));
}

}  // namespace
}  // namespace fairhms
