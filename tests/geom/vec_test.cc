#include "geom/vec.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace fairhms {
namespace {

TEST(VecTest, Dot) {
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b, 3), 32.0);
  EXPECT_DOUBLE_EQ(Dot(a, b, 0), 0.0);
}

TEST(VecTest, NormL2) {
  const double a[] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(NormL2(a, 2), 5.0);
}

TEST(VecTest, SumCoords) {
  const double a[] = {0.5, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(SumCoords(a, 3), 1.0);
}

TEST(VecTest, NormalizeL2MakesUnit) {
  double a[] = {3.0, 4.0};
  NormalizeL2(a, 2);
  EXPECT_NEAR(NormL2(a, 2), 1.0, 1e-12);
  EXPECT_NEAR(a[0], 0.6, 1e-12);
}

TEST(VecTest, NormalizeL2ZeroVectorNoop) {
  double a[] = {0.0, 0.0};
  NormalizeL2(a, 2);
  EXPECT_DOUBLE_EQ(a[0], 0.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
}

TEST(VecTest, NormalizeL1MakesUnitSum) {
  double a[] = {2.0, 6.0};
  NormalizeL1(a, 2);
  EXPECT_NEAR(a[0], 0.25, 1e-12);
  EXPECT_NEAR(a[1], 0.75, 1e-12);
}

}  // namespace
}  // namespace fairhms
