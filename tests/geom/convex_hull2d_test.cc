#include "geom/convex_hull2d.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairhms {
namespace {

std::vector<IndexedPoint2> Pts(const std::vector<std::pair<double, double>>& v) {
  std::vector<IndexedPoint2> out;
  for (size_t i = 0; i < v.size(); ++i) {
    out.push_back({v[i].first, v[i].second, static_cast<int>(i)});
  }
  return out;
}

TEST(ConvexHullTest, Square) {
  const auto hull = ConvexHull(Pts({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}}));
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHullTest, CollinearPointsDropped) {
  const auto hull = ConvexHull(Pts({{0, 0}, {1, 1}, {2, 2}, {0, 2}}));
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, DuplicatesHandled) {
  const auto hull = ConvexHull(Pts({{0, 0}, {0, 0}, {1, 0}, {1, 1}, {1, 1}}));
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, TinyInputs) {
  EXPECT_EQ(ConvexHull(Pts({{0.5, 0.5}})).size(), 1u);
  EXPECT_EQ(ConvexHull(Pts({{0, 0}, {1, 1}})).size(), 2u);
  EXPECT_TRUE(ConvexHull({}).empty());
}

TEST(UpperRightHullTest, SimpleStaircase) {
  // (1,0) and (0,1) are the extremes; (0.9,0.9) dominates the middle.
  const auto chain =
      UpperRightHull(Pts({{1, 0}, {0, 1}, {0.9, 0.9}, {0.5, 0.5}}));
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_DOUBLE_EQ(chain.front().x, 1.0);  // Max-x first.
  EXPECT_DOUBLE_EQ(chain.back().y, 1.0);   // Max-y last.
}

TEST(UpperRightHullTest, DominatedPointsExcluded) {
  const auto chain = UpperRightHull(Pts({{1, 1}, {0.5, 0.5}, {0.9, 0.2}}));
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_DOUBLE_EQ(chain[0].x, 1.0);
  EXPECT_DOUBLE_EQ(chain[0].y, 1.0);
}

TEST(UpperRightHullTest, PointUnderSegmentExcluded) {
  // (0.5, 0.45) lies under the segment (1,0)-(0,1).
  const auto chain = UpperRightHull(Pts({{1, 0}, {0, 1}, {0.5, 0.45}}));
  EXPECT_EQ(chain.size(), 2u);
}

TEST(UpperRightHullTest, PointAboveSegmentIncluded) {
  const auto chain = UpperRightHull(Pts({{1, 0}, {0, 1}, {0.6, 0.6}}));
  EXPECT_EQ(chain.size(), 3u);
}

TEST(UpperRightHullTest, ChainIsMonotone) {
  Rng rng(99);
  std::vector<IndexedPoint2> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform(), i});
  }
  const auto chain = UpperRightHull(pts);
  for (size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LT(chain[i].x, chain[i - 1].x);
    EXPECT_GT(chain[i].y, chain[i - 1].y);
  }
}

// Property: every point is, for every direction (l, 1-l), weakly beaten by
// some chain member — the chain contains all maximizers.
TEST(UpperRightHullTest, ChainContainsAllMaximizers) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<IndexedPoint2> pts;
    const int n = 30;
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.Uniform(), rng.Uniform(), i});
    }
    const auto chain = UpperRightHull(pts);
    for (int t = 0; t <= 100; ++t) {
      const double l = t / 100.0;
      double best_all = -1.0;
      for (const auto& p : pts) best_all = std::max(best_all, l * p.x + (1 - l) * p.y);
      double best_chain = -1.0;
      for (const auto& p : chain) {
        best_chain = std::max(best_chain, l * p.x + (1 - l) * p.y);
      }
      EXPECT_NEAR(best_chain, best_all, 1e-12);
    }
  }
}

TEST(UpperRightHullTest, IndicesPreserved) {
  const auto chain = UpperRightHull(Pts({{0.2, 0.2}, {1, 0}, {0, 1}}));
  std::set<int> idx;
  for (const auto& p : chain) idx.insert(p.index);
  EXPECT_TRUE(idx.count(1));
  EXPECT_TRUE(idx.count(2));
  EXPECT_FALSE(idx.count(0));
}

}  // namespace
}  // namespace fairhms
