#include "geom/dominance.h"

#include <gtest/gtest.h>

namespace fairhms {
namespace {

TEST(DominanceTest, StrictDominance) {
  const double a[] = {1.0, 1.0};
  const double b[] = {0.5, 0.5};
  EXPECT_TRUE(Dominates(a, b, 2));
  EXPECT_FALSE(Dominates(b, a, 2));
}

TEST(DominanceTest, EqualPointsDoNotDominate) {
  const double a[] = {0.3, 0.7};
  EXPECT_FALSE(Dominates(a, a, 2));
  EXPECT_TRUE(WeaklyDominates(a, a, 2));
}

TEST(DominanceTest, PartialImprovementCounts) {
  const double a[] = {1.0, 0.5};
  const double b[] = {1.0, 0.4};
  EXPECT_TRUE(Dominates(a, b, 2));  // Equal in dim 0, better in dim 1.
}

TEST(DominanceTest, IncomparablePoints) {
  const double a[] = {1.0, 0.0};
  const double b[] = {0.0, 1.0};
  EXPECT_FALSE(Dominates(a, b, 2));
  EXPECT_FALSE(Dominates(b, a, 2));
  EXPECT_FALSE(WeaklyDominates(a, b, 2));
}

TEST(DominanceTest, HigherDimensions) {
  const double a[] = {0.5, 0.5, 0.5, 0.6};
  const double b[] = {0.5, 0.5, 0.5, 0.5};
  EXPECT_TRUE(Dominates(a, b, 4));
  EXPECT_FALSE(Dominates(a, b, 3));  // Restricted to first 3 dims: equal.
  EXPECT_TRUE(WeaklyDominates(a, b, 3));
}

}  // namespace
}  // namespace fairhms
