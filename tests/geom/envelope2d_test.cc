#include "geom/envelope2d.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairhms {
namespace {

std::vector<IndexedPoint2> RandomPts(Rng* rng, int n) {
  std::vector<IndexedPoint2> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng->Uniform(), rng->Uniform(), i});
  }
  return pts;
}

double BruteEnvelope(const std::vector<IndexedPoint2>& pts, double l) {
  double best = -1.0;
  for (const auto& p : pts) best = std::max(best, p.y + (p.x - p.y) * l);
  return best;
}

TEST(Envelope2DTest, SinglePoint) {
  const Envelope2D env = Envelope2D::Build({{0.4, 0.8, 7}});
  EXPECT_DOUBLE_EQ(env.Eval(0.0), 0.8);
  EXPECT_DOUBLE_EQ(env.Eval(1.0), 0.4);
  EXPECT_DOUBLE_EQ(env.Eval(0.5), 0.6);
  EXPECT_EQ(env.ArgMax(0.3), 7);
}

TEST(Envelope2DTest, TwoCrossingLines) {
  // (1,0) wins at l=1, (0,1) wins at l=0; they cross at l=0.5.
  const Envelope2D env = Envelope2D::Build({{1, 0, 0}, {0, 1, 1}});
  EXPECT_EQ(env.ArgMax(0.0), 1);
  EXPECT_EQ(env.ArgMax(1.0), 0);
  EXPECT_NEAR(env.Eval(0.5), 0.5, 1e-12);
  ASSERT_EQ(env.pieces().size(), 2u);
  EXPECT_NEAR(env.pieces()[0].hi, 0.5, 1e-12);
}

TEST(Envelope2DTest, MatchesBruteForceOnRandomInputs) {
  Rng rng(42);
  for (int trial = 0; trial < 25; ++trial) {
    const auto pts = RandomPts(&rng, 40);
    const Envelope2D env = Envelope2D::Build(pts);
    for (int t = 0; t <= 200; ++t) {
      const double l = t / 200.0;
      EXPECT_NEAR(env.Eval(l), BruteEnvelope(pts, l), 1e-9)
          << "trial " << trial << " lambda " << l;
    }
  }
}

TEST(Envelope2DTest, BreakpointsSortedAndSpanUnitInterval) {
  Rng rng(5);
  const auto pts = RandomPts(&rng, 100);
  const Envelope2D env = Envelope2D::Build(pts);
  const auto bps = env.Breakpoints();
  ASSERT_GE(bps.size(), 2u);
  EXPECT_DOUBLE_EQ(bps.front(), 0.0);
  EXPECT_DOUBLE_EQ(bps.back(), 1.0);
  EXPECT_TRUE(std::is_sorted(bps.begin(), bps.end()));
}

TEST(Envelope2DTest, IntervalAboveFullEnvelopeOwner) {
  // The envelope owner at tau=1 is above on exactly its own piece.
  const Envelope2D env = Envelope2D::Build({{1, 0, 0}, {0, 1, 1}});
  double lo, hi;
  ASSERT_TRUE(env.IntervalAbove(1.0, 0.0, 1.0, &lo, &hi));
  EXPECT_NEAR(lo, 0.5, 1e-9);
  EXPECT_NEAR(hi, 1.0, 1e-9);
}

TEST(Envelope2DTest, IntervalAboveEmptyForWeakPoint) {
  const Envelope2D env = Envelope2D::Build({{1, 0, 0}, {0, 1, 1}});
  double lo, hi;
  // (0.1, 0.1) scores 0.1 everywhere; envelope min is 0.5.
  EXPECT_FALSE(env.IntervalAbove(0.1, 0.1, 0.9, &lo, &hi));
  // But at tau = 0.15 it clears 0.15*envelope around the middle.
  ASSERT_TRUE(env.IntervalAbove(0.1, 0.1, 0.15, &lo, &hi));
  EXPECT_LT(lo, hi);
}

TEST(Envelope2DTest, IntervalAboveMatchesDenseScan) {
  Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    const auto pts = RandomPts(&rng, 25);
    const Envelope2D env = Envelope2D::Build(pts);
    const double tau = 0.5 + 0.5 * rng.Uniform();
    const IndexedPoint2 q{rng.Uniform(), rng.Uniform(), -1};
    double lo, hi;
    const bool has = env.IntervalAbove(q.x, q.y, tau, &lo, &hi);
    // Dense scan.
    double scan_lo = 2.0, scan_hi = -1.0;
    for (int t = 0; t <= 2000; ++t) {
      const double l = t / 2000.0;
      const double line = q.y + (q.x - q.y) * l;
      if (line >= tau * env.Eval(l) - 1e-12) {
        scan_lo = std::min(scan_lo, l);
        scan_hi = std::max(scan_hi, l);
      }
    }
    if (!has) {
      EXPECT_GT(scan_lo, scan_hi);  // Scan found nothing either.
    } else {
      EXPECT_NEAR(lo, scan_lo, 1e-3);
      EXPECT_NEAR(hi, scan_hi, 1e-3);
    }
  }
}

TEST(MinHappinessRatio2DTest, FullSetHasRatioOne) {
  Rng rng(3);
  const auto pts = RandomPts(&rng, 30);
  std::vector<int> all;
  for (int i = 0; i < 30; ++i) all.push_back(i);
  EXPECT_NEAR(MinHappinessRatio2D(pts, all), 1.0, 1e-12);
}

TEST(MinHappinessRatio2DTest, EmptySubsetIsZero) {
  Rng rng(3);
  const auto pts = RandomPts(&rng, 10);
  EXPECT_DOUBLE_EQ(MinHappinessRatio2D(pts, {}), 0.0);
}

TEST(MinHappinessRatio2DTest, MatchesDenseGrid) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = RandomPts(&rng, 20);
    std::vector<int> subset;
    for (int i = 0; i < 20; ++i) {
      if (rng.Bernoulli(0.3)) subset.push_back(i);
    }
    if (subset.empty()) subset.push_back(0);
    const double exact = MinHappinessRatio2D(pts, subset);
    // Dense grid lower-bounds the true minimum gap; exact must be <= grid
    // and close to it.
    double grid = 1.0;
    const Envelope2D env = Envelope2D::Build(pts);
    std::vector<IndexedPoint2> sub;
    for (int i : subset) sub.push_back(pts[static_cast<size_t>(i)]);
    const Envelope2D env_s = Envelope2D::Build(sub);
    for (int t = 0; t <= 5000; ++t) {
      const double l = t / 5000.0;
      grid = std::min(grid, env_s.Eval(l) / env.Eval(l));
    }
    EXPECT_LE(exact, grid + 1e-9);
    EXPECT_NEAR(exact, grid, 1e-4);
  }
}

TEST(MinHappinessRatio2DTest, MonotoneInSubset) {
  Rng rng(31);
  const auto pts = RandomPts(&rng, 25);
  std::vector<int> small = {0, 1, 2};
  std::vector<int> big = {0, 1, 2, 3, 4, 5, 6};
  EXPECT_LE(MinHappinessRatio2D(pts, small),
            MinHappinessRatio2D(pts, big) + 1e-12);
}

}  // namespace
}  // namespace fairhms
