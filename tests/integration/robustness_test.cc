// Cross-module robustness and consistency properties that don't belong to a
// single unit: exactness dominance (IntCov upper-bounds every heuristic),
// forced useless groups, degenerate geometry, option overrides.

#include <numeric>

#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "algo/intcov.h"
#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;
using testing::MakeGrouping;

// IntCov is exact, so every heuristic's (exactly evaluated) mhr must be <=
// IntCov's on the same instance.
TEST(RobustnessTest, IntCovDominatesHeuristicsOn2D) {
  Rng rng(101);
  for (int trial = 0; trial < 8; ++trial) {
    const Dataset data = GenAntiCorrelated(120, 2, &rng);
    const Grouping g = GroupBySumRank(data, 2 + trial % 2);
    const GroupBounds bounds =
        GroupBounds::Proportional(5 + trial % 3, g.Counts(), 0.2);
    const auto sky = ComputeSkyline(data);

    auto exact = IntCov(data, g, bounds);
    ASSERT_TRUE(exact.ok()) << exact.status();
    auto bg = BiGreedy(data, g, bounds);
    ASSERT_TRUE(bg.ok());
    auto fg = FairGreedy(data, g, bounds);
    ASSERT_TRUE(fg.ok());

    const double tol = 1e-7;
    EXPECT_LE(MhrExact2D(data, sky, bg->rows), exact->mhr + tol);
    EXPECT_LE(MhrExact2D(data, sky, fg->rows), exact->mhr + tol);
  }
}

// A group whose points are all deeply dominated still must contribute when
// its lower bound forces it; the optimum on the useful groups is preserved.
TEST(RobustnessTest, ForcedUselessGroupHandled) {
  const Dataset data = MakeDataset({{1.0, 0.0},
                                    {0.0, 1.0},
                                    {0.7, 0.7},
                                    {0.01, 0.01},
                                    {0.02, 0.01},
                                    {0.01, 0.02}});
  const Grouping g = MakeGrouping({0, 0, 0, 1, 1, 1}, 2);
  auto bounds = GroupBounds::Explicit(4, {3, 1}, {3, 1});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(data, g, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  const auto counts = SolutionGroupCounts(sol->rows, g);
  EXPECT_EQ(counts, (std::vector<int>{3, 1}));
  // The three useful points are all selected -> mhr = 1 despite the junk
  // group member.
  EXPECT_NEAR(sol->mhr, 1.0, 1e-9);
}

TEST(RobustnessTest, AllIdenticalPoints) {
  const Dataset data = MakeDataset({{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}});
  const Grouping g = SingleGroup(3);
  auto bounds = GroupBounds::Explicit(2, {0}, {2});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(data, g, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 2u);
  EXPECT_NEAR(sol->mhr, 1.0, 1e-9);
  auto bg = BiGreedy(data, g, *bounds);
  ASSERT_TRUE(bg.ok());
  EXPECT_EQ(bg->rows.size(), 2u);
}

TEST(RobustnessTest, CollinearPointsOnDiagonal) {
  // All points on the anti-diagonal: every point is a skyline point, any
  // single endpoint pair covers the envelope.
  const Dataset data = MakeDataset(
      {{1.0, 0.0}, {0.75, 0.25}, {0.5, 0.5}, {0.25, 0.75}, {0.0, 1.0}});
  const Grouping g = SingleGroup(5);
  EXPECT_EQ(ComputeSkyline(data).size(), 5u);
  auto bounds = GroupBounds::Explicit(2, {0}, {2});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(data, g, *bounds);
  ASSERT_TRUE(sol.ok());
  // {(1,0), (0,1)} is optimal; the midpoints lie on the chord.
  EXPECT_EQ(sol->rows, (std::vector<int>{0, 4}));
}

TEST(RobustnessTest, PoolOverrideRestrictsCandidates) {
  Rng rng(103);
  const Dataset data = GenIndependent(100, 3, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.2);
  // Restrict the pool to an arbitrary half of the rows.
  std::vector<int> pool;
  for (int i = 0; i < 100; i += 2) pool.push_back(i);
  BiGreedyOptions opts;
  opts.pool = pool;
  auto sol = BiGreedy(data, g, bounds, opts);
  ASSERT_TRUE(sol.ok()) << sol.status();
  // Padding may reach outside the pool only when the pool cannot satisfy
  // the bounds; here it can, so all rows must be even.
  for (int r : sol->rows) EXPECT_EQ(r % 2, 0) << r;
}

TEST(RobustnessTest, TinyNetStillProducesFairSolution) {
  Rng rng(104);
  const Dataset data = GenAntiCorrelated(200, 4, &rng);
  const Grouping g = GroupBySumRank(data, 3);
  const GroupBounds bounds = GroupBounds::Proportional(9, g.Counts(), 0.2);
  BiGreedyOptions opts;
  opts.net_size = 4;  // Absurdly coarse net.
  auto sol = BiGreedy(data, g, bounds, opts);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 9u);
  EXPECT_EQ(CountViolations(sol->rows, g, bounds), 0);
}

TEST(RobustnessTest, SkylinePrefilterPathIsExact) {
  Rng rng(105);
  const Dataset data = GenIndependent(300, 3, &rng);
  SkylineOptions with_prefilter;
  with_prefilter.prefilter_sample = 32;  // Forces the prefilter code path.
  const auto a = ComputeSkyline(data, with_prefilter);
  SkylineOptions no_prefilter;
  no_prefilter.prefilter_sample = 100000;  // Sample covers everything.
  const auto b = ComputeSkyline(data, no_prefilter);
  EXPECT_EQ(a, b);
}

TEST(RobustnessTest, DmmMatchesIntCovBallparkOn2D) {
  Rng rng(106);
  const Dataset data = GenAntiCorrelated(300, 2, &rng);
  const auto sky = ComputeSkyline(data);
  const Grouping single = SingleGroup(data.size());
  auto bounds = GroupBounds::Explicit(6, {0}, {6});
  ASSERT_TRUE(bounds.ok());
  auto exact = IntCov(data, single, *bounds);
  ASSERT_TRUE(exact.ok());
  auto dmm = Dmm(data, sky, 6);
  ASSERT_TRUE(dmm.ok());
  const double dmm_mhr = MhrExact2D(data, sky, dmm->rows);
  EXPECT_LE(dmm_mhr, exact->mhr + 1e-9);
  EXPECT_GE(dmm_mhr, exact->mhr - 0.1);  // Coarse but not broken.
}

TEST(RobustnessTest, EvaluatorsAgreeAcrossEngines3D) {
  // LP-exact vs a fine net on small 3D instances: net upper-bounds and the
  // gap shrinks with net size (Lemma 4.1 in action).
  Rng rng(107);
  const Dataset data = GenAntiCorrelated(60, 3, &rng);
  const auto sky = ComputeSkyline(data);
  std::vector<int> sol;
  for (size_t i = 0; i < sky.size(); i += 6) sol.push_back(sky[i]);
  const double exact = MhrExactLp(data, sky, sol);
  double prev_gap = 1.0;
  for (size_t m : {200, 2000, 20000}) {
    Rng net_rng(9);
    const UtilityNet net = UtilityNet::SampleRandom(3, m, &net_rng);
    const NetEvaluator eval(&data, &net, sky);
    const double net_mhr = eval.Mhr(sol);
    const double gap = net_mhr - exact;
    EXPECT_GE(gap, -1e-9);
    EXPECT_LE(gap, prev_gap + 1e-9);
    prev_gap = gap;
  }
}

TEST(RobustnessTest, GroupCountOneBoundsEqualKReducesToVanilla) {
  // C=1, l=h=k: FairHMS == HMS (paper's reduction). IntCov with this
  // setting must equal IntCov with l=0.
  Rng rng(108);
  const Dataset data = GenIndependent(50, 2, &rng);
  const Grouping g = SingleGroup(50);
  auto tight = GroupBounds::Explicit(4, {4}, {4});
  auto loose = GroupBounds::Explicit(4, {0}, {4});
  ASSERT_TRUE(tight.ok() && loose.ok());
  auto st = IntCov(data, g, *tight);
  auto sl = IntCov(data, g, *loose);
  ASSERT_TRUE(st.ok() && sl.ok());
  EXPECT_NEAR(st->mhr, sl->mhr, 1e-9);
}

}  // namespace
}  // namespace fairhms
