// Randomized stress sweep: hammer every solver with random instances and
// enforce the universal invariants — no crashes, Status-clean failures,
// fairness, solution size, mhr in [0,1], determinism under fixed seeds.

#include <numeric>

#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "algo/group_adapter.h"
#include "algo/intcov.h"
#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

struct Instance {
  Dataset data{1};
  Grouping grouping;
  GroupBounds bounds;
};

Instance RandomInstance(Rng* rng, int max_d) {
  Instance inst;
  const int d = 2 + static_cast<int>(rng->UniformInt(static_cast<uint64_t>(max_d - 1)));
  const size_t n = 30 + rng->UniformInt(170);
  switch (rng->UniformInt(3)) {
    case 0:
      inst.data = GenIndependent(n, d, rng);
      break;
    case 1:
      inst.data = GenAntiCorrelated(n, d, rng);
      break;
    default:
      inst.data = GenCorrelated(n, d, rng);
      break;
  }
  const int c_num = 1 + static_cast<int>(rng->UniformInt(4));
  inst.grouping = GroupBySumRank(inst.data, c_num);
  const int k = std::max<int>(
      c_num, 2 + static_cast<int>(rng->UniformInt(10)));
  inst.bounds = GroupBounds::Proportional(k, inst.grouping.Counts(),
                                          0.05 + 0.4 * rng->Uniform());
  return inst;
}

void CheckSolution(const Instance& inst, const Solution& sol,
                   const char* algo) {
  EXPECT_EQ(static_cast<int>(sol.rows.size()), inst.bounds.k) << algo;
  EXPECT_EQ(CountViolations(sol.rows, inst.grouping, inst.bounds), 0) << algo;
  EXPECT_GE(sol.mhr, 0.0) << algo;
  EXPECT_LE(sol.mhr, 1.0 + 1e-9) << algo;
  // Distinct rows.
  std::vector<int> copy = sol.rows;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(std::adjacent_find(copy.begin(), copy.end()), copy.end()) << algo;
}

TEST(StressTest, FairSolversSurviveRandomInstances) {
  Rng rng(20240601);
  for (int trial = 0; trial < 40; ++trial) {
    const Instance inst = RandomInstance(&rng, 6);
    if (!inst.bounds.Validate(inst.grouping.Counts()).ok()) continue;

    auto bg = BiGreedy(inst.data, inst.grouping, inst.bounds);
    ASSERT_TRUE(bg.ok()) << "trial " << trial << ": " << bg.status();
    CheckSolution(inst, *bg, "BiGreedy");

    auto fg = FairGreedy(inst.data, inst.grouping, inst.bounds);
    ASSERT_TRUE(fg.ok()) << "trial " << trial << ": " << fg.status();
    CheckSolution(inst, *fg, "F-Greedy");

    if (inst.data.dim() == 2) {
      auto ic = IntCov(inst.data, inst.grouping, inst.bounds);
      ASSERT_TRUE(ic.ok()) << "trial " << trial << ": " << ic.status();
      CheckSolution(inst, *ic, "IntCov");
      // Exactness: IntCov tops both heuristics (all exactly evaluated).
      const auto sky = ComputeSkyline(inst.data);
      EXPECT_GE(ic->mhr + 1e-7, MhrExact2D(inst.data, sky, bg->rows));
      EXPECT_GE(ic->mhr + 1e-7, MhrExact2D(inst.data, sky, fg->rows));
    }
  }
}

TEST(StressTest, GroupAdaptersSurviveOrFailCleanly) {
  Rng rng(77001);
  BaseSolver solvers[] = {
      [](const Dataset& d, const std::vector<int>& rows, int k) {
        return RdpGreedy(d, rows, k);
      },
      [](const Dataset& d, const std::vector<int>& rows, int k) {
        return HittingSet(d, rows, k);
      },
  };
  const char* names[] = {"Greedy", "HS"};
  for (int trial = 0; trial < 15; ++trial) {
    const Instance inst = RandomInstance(&rng, 5);
    if (!inst.bounds.Validate(inst.grouping.Counts()).ok()) continue;
    for (int s = 0; s < 2; ++s) {
      auto sol = GroupAdapt(solvers[s], names[s], inst.data, inst.grouping,
                            inst.bounds);
      if (!sol.ok()) continue;  // Clean Status failure is acceptable.
      CheckSolution(inst, *sol, names[s]);
    }
  }
}

TEST(StressTest, DeterminismAcrossRepeatedRuns) {
  Rng rng(880088);
  for (int trial = 0; trial < 6; ++trial) {
    const Instance inst = RandomInstance(&rng, 5);
    if (!inst.bounds.Validate(inst.grouping.Counts()).ok()) continue;
    auto a = BiGreedy(inst.data, inst.grouping, inst.bounds);
    auto b = BiGreedy(inst.data, inst.grouping, inst.bounds);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->rows, b->rows) << "trial " << trial;
    auto fa = FairGreedy(inst.data, inst.grouping, inst.bounds);
    auto fb = FairGreedy(inst.data, inst.grouping, inst.bounds);
    ASSERT_TRUE(fa.ok() && fb.ok());
    EXPECT_EQ(fa->rows, fb->rows) << "trial " << trial;
  }
}

TEST(StressTest, UnfairBaselinesHandleArbitraryPools) {
  Rng rng(990099);
  for (int trial = 0; trial < 12; ++trial) {
    const int d = 2 + static_cast<int>(rng.UniformInt(5));
    const Dataset data = GenAntiCorrelated(100 + rng.UniformInt(100), d, &rng);
    const auto sky = ComputeSkyline(data);
    const int k = 1 + static_cast<int>(rng.UniformInt(12));
    auto g = RdpGreedy(data, sky, k);
    ASSERT_TRUE(g.ok());
    EXPECT_LE(g->rows.size(), static_cast<size_t>(k));
    auto h = HittingSet(data, sky, k);
    ASSERT_TRUE(h.ok());
    auto m = Dmm(data, sky, k);
    if (m.ok()) {
      EXPECT_LE(m->rows.size(), static_cast<size_t>(k));
    } else {
      EXPECT_EQ(m.status().code(), StatusCode::kResourceExhausted);
    }
    if (k >= d) {
      auto s = SphereAlgo(data, sky, k);
      ASSERT_TRUE(s.ok());
    }
  }
}

}  // namespace
}  // namespace fairhms
