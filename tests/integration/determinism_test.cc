// Cross-thread-count determinism: every algorithm must select the same
// rows and report a bit-identical mhr at threads = 1 and threads = 8.
// This is the contract that makes --threads a pure performance knob.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "algo/group_adapter.h"
#include "algo/intcov.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

constexpr int kParallelThreads = 8;

struct Instance {
  Dataset data{1};
  Grouping grouping;
  GroupBounds bounds;
};

Instance MakeInstance(int dim, int k, uint64_t seed) {
  Instance inst;
  Rng rng(seed);
  inst.data = GenIndependent(600, dim, &rng).NormalizedMinMax();
  inst.grouping = GroupBySumRank(inst.data, 3);
  inst.bounds = GroupBounds::Proportional(k, inst.grouping.Counts(), 0.2);
  return inst;
}

void ExpectSameSolution(const StatusOr<Solution>& serial,
                        const StatusOr<Solution>& parallel,
                        const std::string& label) {
  ASSERT_TRUE(serial.ok()) << label << ": " << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << label << ": " << parallel.status().ToString();
  EXPECT_EQ(serial->rows, parallel->rows) << label;
  // Bit-identical, not approximately equal.
  EXPECT_EQ(serial->mhr, parallel->mhr) << label;
}

TEST(DeterminismTest, IntCov) {
  const Instance inst = MakeInstance(/*dim=*/2, /*k=*/8, /*seed=*/101);
  IntCovOptions serial_opts;
  serial_opts.threads = 1;
  IntCovOptions parallel_opts;
  parallel_opts.threads = kParallelThreads;
  ExpectSameSolution(
      IntCov(inst.data, inst.grouping, inst.bounds, serial_opts),
      IntCov(inst.data, inst.grouping, inst.bounds, parallel_opts), "intcov");
}

TEST(DeterminismTest, BiGreedy) {
  const Instance inst = MakeInstance(/*dim=*/4, /*k=*/10, /*seed=*/102);
  BiGreedyOptions serial_opts;
  serial_opts.threads = 1;
  BiGreedyOptions parallel_opts;
  parallel_opts.threads = kParallelThreads;
  ExpectSameSolution(
      BiGreedy(inst.data, inst.grouping, inst.bounds, serial_opts),
      BiGreedy(inst.data, inst.grouping, inst.bounds, parallel_opts),
      "bigreedy");
}

TEST(DeterminismTest, BiGreedyPlus) {
  const Instance inst = MakeInstance(/*dim=*/4, /*k=*/10, /*seed=*/103);
  BiGreedyPlusOptions serial_opts;
  serial_opts.base.threads = 1;
  BiGreedyPlusOptions parallel_opts;
  parallel_opts.base.threads = kParallelThreads;
  ExpectSameSolution(
      BiGreedyPlus(inst.data, inst.grouping, inst.bounds, serial_opts),
      BiGreedyPlus(inst.data, inst.grouping, inst.bounds, parallel_opts),
      "bigreedy+");
}

TEST(DeterminismTest, FairGreedy) {
  const Instance inst = MakeInstance(/*dim=*/4, /*k=*/8, /*seed=*/104);
  FairGreedyOptions serial_opts;
  serial_opts.threads = 1;
  FairGreedyOptions parallel_opts;
  parallel_opts.threads = kParallelThreads;
  ExpectSameSolution(
      FairGreedy(inst.data, inst.grouping, inst.bounds, serial_opts),
      FairGreedy(inst.data, inst.grouping, inst.bounds, parallel_opts),
      "fair_greedy");
}

TEST(DeterminismTest, GroupAdaptedBaselines) {
  const Instance inst = MakeInstance(/*dim=*/4, /*k=*/12, /*seed=*/105);
  const auto run = [&](int threads) {
    std::vector<StatusOr<Solution>> out;
    GroupAdapterOptions adapter_opts;
    adapter_opts.threads = threads;
    out.push_back(GroupAdapt(
        [threads](const Dataset& d, const std::vector<int>& rows, int k) {
          RdpGreedyOptions o;
          o.threads = threads;
          return RdpGreedy(d, rows, k, o);
        },
        "Greedy", inst.data, inst.grouping, inst.bounds, adapter_opts));
    out.push_back(GroupAdapt(
        [threads](const Dataset& d, const std::vector<int>& rows, int k) {
          DmmOptions o;
          o.threads = threads;
          return Dmm(d, rows, k, o);
        },
        "DMM", inst.data, inst.grouping, inst.bounds, adapter_opts));
    out.push_back(GroupAdapt(
        [threads](const Dataset& d, const std::vector<int>& rows, int k) {
          HittingSetOptions o;
          o.threads = threads;
          return HittingSet(d, rows, k, o);
        },
        "HS", inst.data, inst.grouping, inst.bounds, adapter_opts));
    return out;
  };
  const auto serial = run(1);
  const auto parallel = run(kParallelThreads);
  const char* names[] = {"g_greedy", "g_dmm", "g_hs"};
  for (size_t i = 0; i < serial.size(); ++i) {
    ExpectSameSolution(serial[i], parallel[i], names[i]);
  }
}

TEST(DeterminismTest, UnconstrainedBaselines) {
  const Instance inst = MakeInstance(/*dim=*/4, /*k=*/10, /*seed=*/106);
  const std::vector<int> sky = ComputeSkyline(inst.data);

  {
    RdpGreedyOptions serial_opts, parallel_opts;
    serial_opts.threads = 1;
    parallel_opts.threads = kParallelThreads;
    ExpectSameSolution(RdpGreedy(inst.data, sky, 10, serial_opts),
                       RdpGreedy(inst.data, sky, 10, parallel_opts),
                       "rdp_greedy");
  }
  {
    DmmOptions serial_opts, parallel_opts;
    serial_opts.threads = 1;
    parallel_opts.threads = kParallelThreads;
    ExpectSameSolution(Dmm(inst.data, sky, 10, serial_opts),
                       Dmm(inst.data, sky, 10, parallel_opts), "dmm");
  }
  {
    SphereOptions serial_opts, parallel_opts;
    serial_opts.threads = 1;
    parallel_opts.threads = kParallelThreads;
    ExpectSameSolution(SphereAlgo(inst.data, sky, 10, serial_opts),
                       SphereAlgo(inst.data, sky, 10, parallel_opts),
                       "sphere");
  }
  {
    HittingSetOptions serial_opts, parallel_opts;
    serial_opts.threads = 1;
    parallel_opts.threads = kParallelThreads;
    ExpectSameSolution(HittingSet(inst.data, sky, 10, serial_opts),
                       HittingSet(inst.data, sky, 10, parallel_opts), "hs");
  }
}

}  // namespace
}  // namespace fairhms
