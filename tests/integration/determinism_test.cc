// Cross-thread-count determinism, exercised through the Solver::Solve
// facade: every registered algorithm must select the same rows and report a
// bit-identical mhr at threads = 1 and threads = 8. This is the contract
// that makes --threads a pure performance knob, now tested on the exact
// path the CLI and library users take.
//
// The same suite also pins the SolverSession warm-path contract: serving a
// query through a session (cold cache, then fully warm cache) must be
// bit-identical to an independent Solver::Solve, for every algorithm.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "api/solver.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"

namespace fairhms {
namespace {

constexpr int kParallelThreads = 8;

// The parameter list is spelled out (instead of reading
// AlgorithmRegistry::Names() at instantiation time) because gtest
// instantiates during static initialization, which races the registrars in
// other translation units. RegistryCoversDeterminismSuite below fails when
// the registry and this list drift apart.
const std::string kAlgorithms[] = {
    "bigreedy", "bigreedy+", "dmm",    "fair_greedy", "g_dmm",  "g_greedy",
    "g_hs",     "g_sphere",  "hs",     "intcov",      "rdp_greedy", "sphere"};

struct Instance {
  Dataset data{1};
  Grouping grouping;
  GroupBounds bounds;
};

/// 600 independent points, 3 equal groups, k = 12 with alpha = 0.2 so every
/// per-group quota is 4 = dim (g_sphere stays feasible); intcov runs on its
/// 2D projection via the facade.
Instance MakeInstance(uint64_t seed) {
  Instance inst;
  Rng rng(seed);
  inst.data = GenIndependent(600, /*dim=*/4, &rng).NormalizedMinMax();
  inst.grouping = GroupBySumRank(inst.data, 3);
  inst.bounds = GroupBounds::Proportional(12, inst.grouping.Counts(), 0.2);
  return inst;
}

class FacadeDeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FacadeDeterminismTest, SerialMatchesParallel) {
  const std::string algo = GetParam();
  const Instance inst = MakeInstance(/*seed=*/101);

  SolverRequest request;
  request.data = &inst.data;
  request.grouping = &inst.grouping;
  request.bounds = inst.bounds;
  request.algorithm = algo;

  request.threads = 1;
  auto serial = Solver::Solve(request);
  request.threads = kParallelThreads;
  auto parallel = Solver::Solve(request);

  ASSERT_TRUE(serial.ok()) << algo << ": " << serial.status().ToString();
  ASSERT_TRUE(parallel.ok()) << algo << ": " << parallel.status().ToString();
  EXPECT_EQ(serial->solution.rows, parallel->solution.rows) << algo;
  // Bit-identical, not approximately equal.
  EXPECT_EQ(serial->solution.mhr, parallel->solution.mhr) << algo;
  EXPECT_EQ(serial->group_counts, parallel->group_counts) << algo;
  EXPECT_EQ(serial->violations, parallel->violations) << algo;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FacadeDeterminismTest,
                         ::testing::ValuesIn(kAlgorithms));

TEST_P(FacadeDeterminismTest, SessionWarmMatchesCold) {
  const std::string algo = GetParam();
  const Instance inst = MakeInstance(/*seed=*/101);

  SolverRequest request;
  request.data = &inst.data;
  request.grouping = &inst.grouping;
  request.bounds = inst.bounds;
  request.algorithm = algo;

  auto cold = Solver::Solve(request);
  ASSERT_TRUE(cold.ok()) << algo << ": " << cold.status().ToString();

  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto first = session->Solve(request);   // Cold cache inside the session.
  auto second = session->Solve(request);  // Every artifact warm.
  ASSERT_TRUE(first.ok()) << algo << ": " << first.status().ToString();
  ASSERT_TRUE(second.ok()) << algo << ": " << second.status().ToString();

  for (const auto* warm : {&*first, &*second}) {
    EXPECT_EQ(cold->solution.rows, warm->solution.rows) << algo;
    EXPECT_EQ(cold->solution.mhr, warm->solution.mhr) << algo;
    EXPECT_EQ(cold->group_counts, warm->group_counts) << algo;
    EXPECT_EQ(cold->violations, warm->violations) << algo;
    EXPECT_EQ(cold->skyline, warm->skyline) << algo;
    EXPECT_EQ(cold->note, warm->note) << algo;
  }
  // The warm pass really was served from the cache.
  EXPECT_GT(session->cache_stats().TotalHits(), 0u) << algo;
}

TEST(FacadeDeterminismTest, RegistryCoversDeterminismSuite) {
  std::vector<std::string> expected(std::begin(kAlgorithms),
                                    std::end(kAlgorithms));
  EXPECT_EQ(AlgorithmRegistry::Instance().Names(), expected)
      << "registry and determinism suite drifted apart; update kAlgorithms";
}

TEST(FacadeDeterminismTest, RepeatedSolvesAreIdentical) {
  // Same request twice (fixed seed) -> identical rows, also for the
  // randomized algorithms.
  const Instance inst = MakeInstance(/*seed=*/202);
  SolverRequest request;
  request.data = &inst.data;
  request.grouping = &inst.grouping;
  request.bounds = inst.bounds;
  for (const char* algo : {"bigreedy", "sphere", "hs"}) {
    request.algorithm = algo;
    auto first = Solver::Solve(request);
    auto second = Solver::Solve(request);
    ASSERT_TRUE(first.ok()) << algo << ": " << first.status().ToString();
    ASSERT_TRUE(second.ok()) << algo << ": " << second.status().ToString();
    EXPECT_EQ(first->solution.rows, second->solution.rows) << algo;
    EXPECT_EQ(first->solution.mhr, second->solution.mhr) << algo;
  }
}

}  // namespace
}  // namespace fairhms
