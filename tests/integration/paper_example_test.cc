// Reproduces the paper's running example end to end (Table 1, the intro's
// k = 3 HMS anecdote, and Example 2.2), validating the whole stack —
// normalization, skyline, envelope, IntCov, fairness — against published
// numbers.

#include <gtest/gtest.h>

#include "algo/intcov.h"
#include "core/exact_evaluator.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeLsacExample;

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = std::make_unique<Dataset>(MakeLsacExample());
    sky_ = ComputeSkyline(*data_);
  }
  std::unique_ptr<Dataset> data_;
  std::vector<int> sky_;
};

TEST_F(PaperExampleTest, AllApplicantsAreInTheSkyline) {
  // "Since all the applicants are in the skyline ..." (paper Sec. 1).
  EXPECT_EQ(sky_.size(), 8u);
}

TEST_F(PaperExampleTest, HmsK3SelectsThreeMales) {
  // Intro: unconstrained HMS with k = 3 returns {a4, a5, a7} with minimum
  // happiness ratio 0.9984 — all male applicants.
  const Grouping g = SingleGroup(8);
  auto bounds = GroupBounds::Explicit(3, {0}, {3});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(*data_, g, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows, (std::vector<int>{3, 4, 6}));  // a4, a5, a7.
  EXPECT_NEAR(sol->mhr, 0.9984, 5e-4);
  // All three are male (codes: 1 = Male).
  for (int r : sol->rows) {
    EXPECT_EQ(data_->categorical(0).codes[static_cast<size_t>(r)], 1);
  }
}

TEST_F(PaperExampleTest, HmsK3ViolatesProportionalGenderFairness) {
  auto gender = GroupByCategorical(*data_, "gender");
  ASSERT_TRUE(gender.ok());
  const GroupBounds bounds =
      GroupBounds::Proportional(3, gender->Counts(), 0.1);
  // {a4, a5, a7} has 0 females but the female lower bound is >= 1.
  EXPECT_GT(CountViolations({3, 4, 6}, *gender, bounds), 0);
}

TEST_F(PaperExampleTest, Example22UnconstrainedK2) {
  // Example 2.2: HMS with k = 2 returns S0 = {a4, a5}, mhr(S0) = 0.9846.
  const Grouping g = SingleGroup(8);
  auto bounds = GroupBounds::Explicit(2, {0}, {2});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(*data_, g, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows, (std::vector<int>{3, 4}));  // a4, a5.
  EXPECT_NEAR(sol->mhr, 0.9846, 5e-4);
}

TEST_F(PaperExampleTest, Example22FairK2) {
  // Example 2.2: with gender bounds l = h = 1, the optimum is {a5, a8} with
  // mhr = 0.9834.
  auto gender = GroupByCategorical(*data_, "gender");
  ASSERT_TRUE(gender.ok());
  auto bounds = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(*data_, *gender, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows, (std::vector<int>{4, 7}));  // a5, a8.
  EXPECT_NEAR(sol->mhr, 0.9834, 5e-4);
  EXPECT_EQ(CountViolations(sol->rows, *gender, *bounds), 0);
}

TEST_F(PaperExampleTest, PublishedMhrValuesMatchExactEvaluators) {
  // The three published mhr values, checked against both exact engines.
  EXPECT_NEAR(MhrExact2D(*data_, sky_, {3, 4}), 0.9846, 5e-4);
  EXPECT_NEAR(MhrExact2D(*data_, sky_, {4, 7}), 0.9834, 5e-4);
  EXPECT_NEAR(MhrExact2D(*data_, sky_, {3, 4, 6}), 0.9984, 5e-4);
  EXPECT_NEAR(MhrExactLp(*data_, sky_, {3, 4}), 0.9846, 5e-4);
  EXPECT_NEAR(MhrExactLp(*data_, sky_, {4, 7}), 0.9834, 5e-4);
  EXPECT_NEAR(MhrExactLp(*data_, sky_, {3, 4, 6}), 0.9984, 5e-4);
}

TEST_F(PaperExampleTest, PriceOfFairnessIsSmall) {
  // 0.9846 -> 0.9834: the paper's point that fairness costs little.
  const double unfair = MhrExact2D(*data_, sky_, {3, 4});
  const double fair = MhrExact2D(*data_, sky_, {4, 7});
  EXPECT_LT(unfair - fair, 0.01);
  EXPECT_GT(unfair, fair);
}

TEST_F(PaperExampleTest, RaceFairSelectionFeasible) {
  // Race has 4 groups of 2; l = h = 1 with k = 4 must be solvable.
  auto race = GroupByCategorical(*data_, "race");
  ASSERT_TRUE(race.ok());
  ASSERT_EQ(race->num_groups, 4);
  auto bounds = GroupBounds::Explicit(4, {1, 1, 1, 1}, {1, 1, 1, 1});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(*data_, *race, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 4u);
  EXPECT_EQ(CountViolations(sol->rows, *race, *bounds), 0);
}

}  // namespace
}  // namespace fairhms
