// End-to-end runs over the dataset replicas: every fair algorithm produces
// zero-violation size-k solutions; unconstrained baselines violate; the
// price of fairness stays small; native fair algorithms beat the G-adapted
// baselines (the paper's headline experimental claims, in miniature).

#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "algo/group_adapter.h"
#include "algo/intcov.h"
#include "common/random.h"
#include "core/evaluate.h"
#include "data/generators.h"
#include "skyline/skyline.h"

namespace fairhms {
namespace {

TEST(EndToEndTest, LawschsGenderPipeline) {
  Rng rng(2022);
  const Dataset raw = MakeLawschsSim(&rng, 8000);
  const Dataset data = raw.ScaledByMax();
  auto gender = GroupByCategorical(data, "gender");
  ASSERT_TRUE(gender.ok());
  const int k = 4;
  const GroupBounds bounds =
      GroupBounds::Proportional(k, gender->Counts(), 0.1);
  const auto sky = ComputeSkyline(data);

  // Exact fair optimum.
  auto exact = IntCov(data, *gender, bounds);
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_EQ(CountViolations(exact->rows, *gender, bounds), 0);

  // Unconstrained optimum (price of fairness reference).
  const Grouping single = SingleGroup(data.size());
  auto unconstrained =
      IntCov(data, single, GroupBounds::Balanced(k, 1, 0.0).value());
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_LE(exact->mhr, unconstrained->mhr + 1e-9);
  // Price of fairness is small on Lawschs (paper Fig. 4: within ~0.02).
  EXPECT_LT(unconstrained->mhr - exact->mhr, 0.05);

  // BiGreedy close to exact.
  auto bg = BiGreedy(data, *gender, bounds);
  ASSERT_TRUE(bg.ok());
  const double bg_mhr = EvaluateMhr(data, sky, bg->rows);
  EXPECT_EQ(CountViolations(bg->rows, *gender, bounds), 0);
  EXPECT_GE(bg_mhr, exact->mhr - 0.1);
}

TEST(EndToEndTest, UnconstrainedBaselinesViolateOnAdult) {
  Rng rng(7);
  const Dataset raw = MakeAdultSim(&rng, 4000);
  const Dataset data = raw.ScaledByMax();
  auto gender = GroupByCategorical(data, "gender");
  ASSERT_TRUE(gender.ok());
  const int k = 10;
  const GroupBounds bounds =
      GroupBounds::Proportional(k, gender->Counts(), 0.1);
  const auto sky = ComputeSkyline(data);

  // The unconstrained greedy baseline picks mostly from the gain-heavy male
  // group -> violations (Fig. 3's phenomenon).
  auto greedy = RdpGreedy(data, sky, k);
  ASSERT_TRUE(greedy.ok());
  EXPECT_GT(CountViolations(greedy->rows, *gender, bounds), 0);

  // The fair algorithms do not.
  auto bg = BiGreedy(data, *gender, bounds);
  ASSERT_TRUE(bg.ok());
  EXPECT_EQ(CountViolations(bg->rows, *gender, bounds), 0);
  auto fg = FairGreedy(data, *gender, bounds);
  ASSERT_TRUE(fg.ok());
  EXPECT_EQ(CountViolations(fg->rows, *gender, bounds), 0);
}

TEST(EndToEndTest, NativeFairBeatsGroupAdaptedOnAntiCorrelated) {
  Rng rng(13);
  const Dataset data = GenAntiCorrelated(2000, 4, &rng);
  const Grouping g = GroupBySumRank(data, 4);
  const int k = 12;
  const GroupBounds bounds = GroupBounds::Proportional(k, g.Counts(), 0.1);
  const auto sky = ComputeSkyline(data);

  auto bg = BiGreedy(data, g, bounds);
  ASSERT_TRUE(bg.ok());
  BaseSolver greedy_solver = [](const Dataset& d,
                                const std::vector<int>& rows,
                                int kk) { return RdpGreedy(d, rows, kk); };
  auto gg = GroupAdapt(greedy_solver, "Greedy", data, g, bounds);
  ASSERT_TRUE(gg.ok()) << gg.status();

  const double bg_mhr = EvaluateMhr(data, sky, bg->rows);
  const double gg_mhr = EvaluateMhr(data, sky, gg->rows);
  // Paper: per-group unions are redundant, BiGreedy wins. Allow slack for
  // the miniature instance but insist BiGreedy is not worse.
  EXPECT_GE(bg_mhr, gg_mhr - 0.02);
  EXPECT_EQ(CountViolations(bg->rows, g, bounds), 0);
  EXPECT_EQ(CountViolations(gg->rows, g, bounds), 0);
}

TEST(EndToEndTest, CompasHighDimensionalPipeline) {
  Rng rng(17);
  const Dataset raw = MakeCompasSim(&rng, 1500);
  const Dataset data = raw.ScaledByMax();
  auto g = GroupByCategoricalProduct(data, {"gender", "isRecid"});
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->num_groups, 4);
  const int k = 12;
  const GroupBounds bounds = GroupBounds::Proportional(k, g->Counts(), 0.1);

  auto bg = BiGreedy(data, *g, bounds);
  ASSERT_TRUE(bg.ok()) << bg.status();
  EXPECT_EQ(bg->rows.size(), static_cast<size_t>(k));
  EXPECT_EQ(CountViolations(bg->rows, *g, bounds), 0);

  auto bgp = BiGreedyPlus(data, *g, bounds);
  ASSERT_TRUE(bgp.ok()) << bgp.status();
  EXPECT_EQ(CountViolations(bgp->rows, *g, bounds), 0);
}

TEST(EndToEndTest, CreditSmallDatasetAllGroupings) {
  Rng rng(19);
  const Dataset raw = MakeCreditSim(&rng, 1000);
  const Dataset data = raw.ScaledByMax();
  for (const char* col : {"housing", "job", "working_years"}) {
    auto g = GroupByCategorical(data, col);
    ASSERT_TRUE(g.ok());
    const int k = 12;
    const GroupBounds bounds = GroupBounds::Proportional(k, g->Counts(), 0.1);
    auto bg = BiGreedy(data, *g, bounds);
    ASSERT_TRUE(bg.ok()) << col << ": " << bg.status();
    EXPECT_EQ(CountViolations(bg->rows, *g, bounds), 0) << col;
  }
}

}  // namespace
}  // namespace fairhms
