// Parameterized property sweeps (TEST_P) across dimensionality, group
// count, solution size and data distribution.

#include <numeric>
#include <tuple>

#include <gtest/gtest.h>

#include "algo/bigreedy.h"
#include "algo/fair_greedy.h"
#include "algo/intcov.h"
#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::BruteForceSkyline;
using testing::ForEachSubset;

// ---------------------------------------------------------------------------
// Skyline correctness across (n, d, distribution).

enum class Distro { kIndependent, kAntiCorrelated, kCorrelated };

class SkylineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, Distro>> {};

TEST_P(SkylineSweep, MatchesBruteForce) {
  const auto [n, d, distro] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 131 + d * 17 + static_cast<int>(distro)));
  Dataset data(1);
  switch (distro) {
    case Distro::kIndependent:
      data = GenIndependent(static_cast<size_t>(n), d, &rng);
      break;
    case Distro::kAntiCorrelated:
      data = GenAntiCorrelated(static_cast<size_t>(n), d, &rng);
      break;
    case Distro::kCorrelated:
      data = GenCorrelated(static_cast<size_t>(n), d, &rng);
      break;
  }
  std::vector<int> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), 0);
  auto brute = BruteForceSkyline(data, rows);
  std::sort(brute.begin(), brute.end());
  EXPECT_EQ(ComputeSkyline(data), brute);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SkylineSweep,
    ::testing::Combine(::testing::Values(50, 120, 250),
                       ::testing::Values(2, 3, 5, 7),
                       ::testing::Values(Distro::kIndependent,
                                         Distro::kAntiCorrelated,
                                         Distro::kCorrelated)));

// ---------------------------------------------------------------------------
// Fair feasibility across (d, C, k): every fair solver returns a fair set of
// exactly k rows on random instances.

class FairFeasibilitySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(FairFeasibilitySweep, BiGreedyAndFairGreedyAlwaysFair) {
  const auto [d, c_num, k] = GetParam();
  if (k < c_num) GTEST_SKIP() << "k below one-per-group";
  Rng rng(static_cast<uint64_t>(d * 1009 + c_num * 31 + k));
  const Dataset data = GenAntiCorrelated(250, d, &rng);
  const Grouping g = GroupBySumRank(data, c_num);
  const GroupBounds bounds = GroupBounds::Proportional(k, g.Counts(), 0.1);
  ASSERT_TRUE(bounds.Validate(g.Counts()).ok());

  auto bg = BiGreedy(data, g, bounds);
  ASSERT_TRUE(bg.ok()) << bg.status();
  EXPECT_EQ(static_cast<int>(bg->rows.size()), k);
  EXPECT_EQ(CountViolations(bg->rows, g, bounds), 0);

  auto fg = FairGreedy(data, g, bounds);
  ASSERT_TRUE(fg.ok()) << fg.status();
  EXPECT_EQ(static_cast<int>(fg->rows.size()), k);
  EXPECT_EQ(CountViolations(fg->rows, g, bounds), 0);
}

INSTANTIATE_TEST_SUITE_P(Grid, FairFeasibilitySweep,
                         ::testing::Combine(::testing::Values(2, 4, 6),
                                            ::testing::Values(2, 4, 5),
                                            ::testing::Values(6, 10, 15)));

// ---------------------------------------------------------------------------
// IntCov exactness across (n, k, C) by brute-force enumeration.

class IntCovExactnessSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(IntCovExactnessSweep, MatchesEnumeration) {
  const auto [n, k, c_num] = GetParam();
  if (k < c_num) {
    // Proportional bounds give every group at least one slot, so k < C is
    // infeasible by definition — the only grid points allowed to skip.
    GTEST_SKIP() << "k=" << k << " < C=" << c_num
                 << ": no fair size-k set exists";
  }
  Rng rng(static_cast<uint64_t>(n * 7 + k * 101 + c_num));
  const Dataset data = GenIndependent(static_cast<size_t>(n), 2, &rng);
  const Grouping g = GroupBySumRank(data, c_num);
  const GroupBounds bounds = GroupBounds::Proportional(k, g.Counts(), 0.5);
  // Every k >= C grid point must be exercised; a Validate failure here means
  // Proportional produced unusable bounds and must fail the sweep, not
  // silently shrink it.
  ASSERT_TRUE(bounds.Validate(g.Counts()).ok())
      << "(n=" << n << ", k=" << k << ", C=" << c_num
      << "): " << bounds.Validate(g.Counts());

  auto sol = IntCov(data, g, bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();

  const auto sky = ComputeSkyline(data);
  std::vector<int> all(static_cast<size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  double best = -1.0;
  ForEachSubset(all, k, [&](const std::vector<int>& subset) {
    if (CountViolations(subset, g, bounds) != 0) return;
    best = std::max(best, MhrExact2D(data, sky, subset));
  });
  ASSERT_GE(best, 0.0);
  EXPECT_NEAR(sol->mhr, best, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Grid, IntCovExactnessSweep,
                         ::testing::Combine(::testing::Values(8, 10, 12),
                                            ::testing::Values(2, 3, 4),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Lemma 4.1 across dimensions: the net estimate upper-bounds the exact mhr
// and stays within the error bound for the realized delta.

class NetErrorSweep : public ::testing::TestWithParam<int> {};

TEST_P(NetErrorSweep, NetUpperBoundsExactWithinLemmaError) {
  const int d = GetParam();
  Rng rng(static_cast<uint64_t>(d) * 7919);
  const Dataset data = GenAntiCorrelated(80, d, &rng);
  const auto sky = ComputeSkyline(data);
  std::vector<int> sol;
  for (size_t i = 0; i < sky.size(); i += 5) sol.push_back(sky[i]);
  const double exact = MhrExactLp(data, sky, sol);

  const size_t m = 4000;
  Rng net_rng(3);
  const UtilityNet net = UtilityNet::SampleRandom(d, m, &net_rng);
  const NetEvaluator eval(&data, &net, sky);
  const double net_mhr = eval.Mhr(sol);
  EXPECT_GE(net_mhr, exact - 1e-9) << "net must upper-bound exact";
  // Loose sanity ceiling: within the Lemma 4.1 bound for the delta that m
  // random samples plausibly achieve, padded generously for randomness.
  const double delta = UtilityNet::SampleSizeToDelta(m, d);
  EXPECT_LE(net_mhr - exact, UtilityNet::MhrErrorBound(delta, d) + 0.15);
}

INSTANTIATE_TEST_SUITE_P(Dims, NetErrorSweep, ::testing::Values(2, 3, 4, 5));

}  // namespace
}  // namespace fairhms
