// Positive control for the negative-compilation check: the same shape as
// thread_safety_negative.cc with the locking done right, so it must
// compile cleanly under every supported compiler — including
// clang -Werror=thread-safety. If this control ever fails, the negative
// test's failure proves nothing (the harness, include paths or wrappers
// are broken, not the analysis), which is why CI runs both.
//
// This file is never added to any build target.

#include "common/thread_annotations.h"

namespace fairhms {

class Counter {
 public:
  void Increment() FAIRHMS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++value_;
  }

  int GuardedRead() const FAIRHMS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ FAIRHMS_GUARDED_BY(mu_) = 0;
};

}  // namespace fairhms

int main() {
  fairhms::Counter counter;
  counter.Increment();
  return counter.GuardedRead();
}
