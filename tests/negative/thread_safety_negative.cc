// Negative-compilation fixture: this file MUST NOT compile under
// clang -Werror=thread-safety. It reads and writes a FAIRHMS_GUARDED_BY
// member without holding its mutex — exactly the mistake the annotations
// in src/ exist to reject. The CTest registered in
// tests/negative/CMakeLists.txt runs clang -fsyntax-only over this file
// and passes only when the compiler emits the "requires holding mutex"
// diagnostic; if the analysis ever stops firing (macros accidentally
// defined away under clang, a broken wrapper, a toolchain regression),
// that test fails and CI goes red.
//
// This file is never added to any build target.

#include "common/thread_annotations.h"

namespace fairhms {

class Counter {
 public:
  void Increment() FAIRHMS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    ++value_;
  }

  // BUG (deliberate): touches value_ without mu_. The thread-safety
  // analysis must reject this function.
  int UnguardedRead() const { return value_; }

 private:
  mutable Mutex mu_;
  int value_ FAIRHMS_GUARDED_BY(mu_) = 0;
};

}  // namespace fairhms

int main() {
  fairhms::Counter counter;
  counter.Increment();
  return counter.UnguardedRead();
}
