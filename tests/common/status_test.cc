#include "common/status.h"

#include <gtest/gtest.h>

namespace fairhms {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::IOError("disk"); };
  auto wrapper = [&]() -> Status {
    FAIRHMS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kIOError);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto ok = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    FAIRHMS_RETURN_IF_ERROR(ok());
    return Status::Internal("reached");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeToStringCoversEveryCode) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInfeasible), "Infeasible");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  // The serving codes double as wire-protocol `error.code` strings, so
  // their spelling is part of the protocol contract (docs/protocol.md).
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

}  // namespace
}  // namespace fairhms
