#include "common/statusor.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fairhms {
namespace {

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> s(42);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.value(), 42);
  EXPECT_EQ(*s, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> s(Status::NotFound("nope"));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusConvertedToInternal) {
  StatusOr<int> s{Status::OK()};
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, ValueOrFallsBack) {
  StatusOr<int> err(Status::Internal("x"));
  EXPECT_EQ(err.value_or(-1), -1);
  StatusOr<int> ok(7);
  EXPECT_EQ(ok.value_or(-1), 7);
}

TEST(StatusOrTest, MoveOnlyValueSupported) {
  StatusOr<std::unique_ptr<int>> s(std::make_unique<int>(5));
  ASSERT_TRUE(s.ok());
  std::unique_ptr<int> v = std::move(s).value();
  EXPECT_EQ(*v, 5);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> s(std::string("abc"));
  EXPECT_EQ(s->size(), 3u);
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("nonpositive");
  return v;
}

StatusOr<int> DoubleIt(int v) {
  FAIRHMS_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto ok = DoubleIt(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto err = DoubleIt(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fairhms
