#include "common/string_util.h"

#include <gtest/gtest.h>

namespace fairhms {
namespace {

TEST(SplitTest, BasicSplit) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, EmptyStringGivesOneEmptyField) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ParseDoubleTest, ValidInputs) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("  -1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_TRUE(ParseDouble("0", &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  double v = 0;
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("1.5 2.5", &v));
}

TEST(ParseInt64Test, ValidAndInvalid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInt64(" 7 ", &v));
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(ParseInt64("3.5", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, "+"), "a+b+c");
  EXPECT_EQ(Join({"solo"}, "+"), "solo");
  EXPECT_EQ(Join({}, "+"), "");
}

}  // namespace
}  // namespace fairhms
