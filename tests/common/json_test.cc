// Tests for the common JSON layer: parser semantics (the wire format of
// the serving surface), the deterministic writer, and their round-trip.

#include "common/json.h"

#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace fairhms {
namespace {

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("-2.5e3")->number_value(), -2500.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(JsonParseTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a": [1, {"b": "x"}, null], "c": true})");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v->is_object());
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[1].Find("b")->string_value(), "x");
  EXPECT_TRUE(a->items()[2].is_null());
  EXPECT_TRUE(v->Find("c")->bool_value());
}

TEST(JsonParseTest, MemberOrderPreservedAndDuplicatesKeepLast) {
  auto v = ParseJson(R"({"z": 1, "a": 2, "z": 3})");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->members().size(), 3u);
  EXPECT_EQ(v->members()[0].first, "z");
  EXPECT_EQ(v->members()[1].first, "a");
  EXPECT_DOUBLE_EQ(v->Find("z")->number_value(), 3.0);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "a\"b\\c\ndA");
}

TEST(JsonParseTest, UnicodeEscapeEncodesUtf8) {
  // é (2-byte UTF-8) and € (3-byte UTF-8) via the escape path.
  auto v = ParseJson("\"\\u00e9\\u20acA\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "\xc3\xa9\xe2\x82\xac" "A");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // Trailing garbage.
  EXPECT_FALSE(ParseJson("{} {}").ok());
}

TEST(JsonParseTest, RejectsDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonValueTest, AsInt64RejectsNonIntegers) {
  EXPECT_EQ(*ParseJson("42")->AsInt64(), 42);
  EXPECT_EQ(*ParseJson("-7")->AsInt64(), -7);
  EXPECT_FALSE(ParseJson("2.5")->AsInt64().ok());
  EXPECT_FALSE(ParseJson("\"42\"")->AsInt64().ok());
  EXPECT_FALSE(ParseJson("1e300")->AsInt64().ok());  // Out of int64 range.
}

TEST(JsonValueTest, FindOnNonObjectReturnsNull) {
  EXPECT_EQ(ParseJson("[1]")->Find("a"), nullptr);
  EXPECT_EQ(ParseJson("3")->Find("a"), nullptr);
}

TEST(JsonEscapeTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriteTest, RoundTripsThroughParse) {
  const std::string doc =
      R"({"name": "d\"x", "rows": [1, 2, 3], "ok": true, "note": null})";
  auto v = ParseJson(doc);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(WriteJson(*v), doc);
}

TEST(JsonWriteTest, LegacyEnvelopeSpacing) {
  // The `", "` / `": "` separators are the byte contract of the batch
  // protocol — a change here would break bit-identity of responses.
  JsonWriter w;
  w.BeginObject().Key("id").Int(3).Key("ok").Bool(true);
  w.Key("rows").BeginArray().Int(1).Int(2).EndArray().EndObject();
  EXPECT_EQ(w.str(), "{\"id\": 3, \"ok\": true, \"rows\": [1, 2]}");
}

TEST(JsonWriteTest, DoubleUsesRoundTripPrecision) {
  JsonWriter w;
  w.BeginArray().Double(0.1).Double(1.5).EndArray();
  EXPECT_EQ(w.str(), "[0.10000000000000001, 1.5]");
}

TEST(JsonWriteTest, FixedUsesRequestedPrecision) {
  JsonWriter w;
  w.Fixed(1.23456, 3);
  EXPECT_EQ(w.str(), "1.235");
}

TEST(JsonWriteTest, NonFiniteRendersNull) {
  JsonWriter w;
  w.BeginArray()
      .Double(std::numeric_limits<double>::infinity())
      .Fixed(std::numeric_limits<double>::quiet_NaN(), 3)
      .EndArray();
  EXPECT_EQ(w.str(), "[null, null]");
}

TEST(JsonWriteTest, RawSplicesVerbatim) {
  JsonWriter w;
  w.BeginObject().Key("body").Raw("{\"x\": 1}").EndObject();
  EXPECT_EQ(w.str(), "{\"body\": {\"x\": 1}}");
}

}  // namespace
}  // namespace fairhms
