#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace fairhms {
namespace {

TEST(ThreadPoolTest, EmptyRangeIsNoOp) {
  std::atomic<int> calls{0};
  ParallelFor(4, 0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  ThreadPool pool(2);
  pool.ParallelFor(0, 4, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  const size_t total = 10'000;
  std::vector<int> hits(total, 0);
  ParallelFor(8, total, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];  // Disjoint blocks.
  });
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SerialPathRunsOnCallingThread) {
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  ParallelFor(1, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);  // One contiguous block, no partitioning.
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      ParallelFor(4, 1000,
                  [&](size_t begin, size_t) {
                    if (begin == 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // From a worker-run block too (not just the caller's own lane).
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(1000, 4,
                                [&](size_t, size_t) {
                                  throw std::logic_error("every block");
                                }),
               std::logic_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotAbortOtherBlocks) {
  std::atomic<size_t> covered{0};
  try {
    ParallelFor(4, 4000, [&](size_t begin, size_t end) {
      covered += end - begin;
      if (begin == 0) throw std::runtime_error("one bad block");
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(covered.load(), 4000u);  // Remaining blocks still ran.
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 200; ++round) {
    std::atomic<long long> sum{0};
    pool.ParallelFor(1000, 4, [&](size_t begin, size_t end) {
      long long local = 0;
      for (size_t i = begin; i < end; ++i) local += static_cast<long long>(i);
      sum += local;
    });
    ASSERT_EQ(sum.load(), 999LL * 1000 / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, NestedCallsFallBackToSerialWithoutDeadlock) {
  std::atomic<long long> sum{0};
  ParallelFor(4, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // The nested call must complete (serially) instead of deadlocking on
      // workers that are busy running the outer loop.
      ParallelFor(4, 10, [&](size_t b, size_t e) {
        for (size_t j = b; j < e; ++j) {
          sum += static_cast<long long>(i * 10 + j);
        }
      });
    }
  });
  long long want = 0;
  for (long long i = 0; i < 64; ++i) {
    for (long long j = 0; j < 10; ++j) want += i * 10 + j;
  }
  EXPECT_EQ(sum.load(), want);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  std::vector<std::thread> callers;
  std::vector<long long> sums(6, 0);
  for (int t = 0; t < 6; ++t) {
    callers.emplace_back([t, &sums] {
      for (int round = 0; round < 20; ++round) {
        std::atomic<long long> sum{0};
        ParallelFor(3, 500, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            sum += static_cast<long long>(i);
          }
        });
        sums[static_cast<size_t>(t)] = sum.load();
      }
    });
  }
  for (auto& c : callers) c.join();
  for (long long s : sums) EXPECT_EQ(s, 499LL * 500 / 2);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  long long sum = 0;  // No synchronization: everything runs on this thread.
  pool.ParallelFor(100, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum += static_cast<long long>(i);
  });
  EXPECT_EQ(sum, 99LL * 100 / 2);
}

TEST(ThreadPoolTest, DefaultThreadsKnob) {
  const int hw = HardwareThreads();
  EXPECT_GE(hw, 1);
  EXPECT_EQ(DefaultThreads(), hw);  // Unset knob falls back to hardware.
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3);
  EXPECT_EQ(ResolveThreads(0), 3);
  EXPECT_EQ(ResolveThreads(7), 7);
  SetDefaultThreads(0);  // Reset for other tests.
  EXPECT_EQ(DefaultThreads(), hw);
}

TEST(ThreadPoolTest, StressConcurrentCallersWithDefaultThreadsChurn) {
  // Concurrent ParallelFor callers racing a thread churning the global
  // SetDefaultThreads knob: every caller must still cover its range
  // exactly, whatever thread count a round resolves to. Sized so a TSan
  // build gets plenty of interleavings over the shared default pool, the
  // completion condvar and the knob.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    int setting = 0;
    while (!stop.load()) {
      SetDefaultThreads(setting % 4);  // 0 (hardware), 1, 2, 3, 0, ...
      ++setting;
      std::this_thread::yield();
    }
    SetDefaultThreads(0);  // Reset for other tests.
  });

  constexpr int kCallers = 4;
  constexpr int kRounds = 50;
  std::vector<std::thread> callers;
  std::vector<long long> sums(kCallers, 0);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([t, &sums] {
      for (int round = 0; round < kRounds; ++round) {
        std::atomic<long long> sum{0};
        // threads=0 resolves through the churned knob on every call.
        ParallelFor(0, 600, [&](size_t begin, size_t end) {
          for (size_t i = begin; i < end; ++i) {
            sum += static_cast<long long>(i);
          }
        });
        sums[static_cast<size_t>(t)] = sum.load();
      }
    });
  }
  for (auto& caller : callers) caller.join();
  stop.store(true);
  churner.join();
  for (long long s : sums) EXPECT_EQ(s, 599LL * 600 / 2);
}

TEST(ThreadPoolTest, BlockBoundariesDependOnlyOnTotalAndChunks) {
  // Two runs with identical (total, chunks) must produce identical block
  // boundaries — the determinism substrate the evaluators rely on.
  auto collect = [](size_t total, size_t chunks) {
    std::vector<std::pair<size_t, size_t>> blocks(chunks + 1,
                                                  {SIZE_MAX, SIZE_MAX});
    std::atomic<size_t> slot{0};
    ThreadPool pool(3);
    pool.ParallelFor(total, chunks, [&](size_t begin, size_t end) {
      blocks[slot.fetch_add(1)] = {begin, end};
    });
    blocks.resize(slot.load());
    std::sort(blocks.begin(), blocks.end());
    return blocks;
  };
  EXPECT_EQ(collect(1003, 4), collect(1003, 4));
  // Blocks tile [0, total) without gaps or overlap.
  const auto blocks = collect(1003, 4);
  size_t expect_begin = 0;
  for (const auto& [begin, end] : blocks) {
    EXPECT_EQ(begin, expect_begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 1003u);
}

}  // namespace
}  // namespace fairhms
