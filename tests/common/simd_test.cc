// Bit-identity and dispatch tests for the common/simd.h kernel layer.
//
// The layer's contract is that every kernel produces *bitwise identical*
// results at every dispatch level. These tests run each kernel with
// SetMode(kOff) (scalar reference) and SetMode(kAuto) (best level the host
// supports) over shapes chosen to hit every code path — sub-lane sizes,
// unaligned tails, full tiles — and over value sets with the classic
// floating-point traps: ±0.0, denormals, exact duplicates and all-zero
// rows. On a scalar-only host auto == off and the comparisons are trivially
// true; on SSE2/AVX2/NEON hosts they exercise the vector paths.

#include "common/simd.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "core/exact_evaluator.h"
#include "core/net_evaluator.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"
#include "utility/utility_net.h"

namespace fairhms {
namespace {

using testing::MakeDataset;

bool BitEq(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

::testing::AssertionResult BitsEqual(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (!BitEq(a[i], b[i])) {
      return ::testing::AssertionFailure()
             << "bit mismatch at " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

/// Restores auto mode when a test body returns or fails.
struct ModeGuard {
  ~ModeGuard() { simd::SetMode(simd::SimdMode::kAuto); }
};

/// Nonnegative coordinates with deliberate traps: exact zeros, negative
/// zeros (legal: -0.0 < 0.0 is false, so validation admits it), denormals,
/// and exact duplicates of earlier entries.
double TrapValue(Rng* rng) {
  switch (rng->UniformInt(8)) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return 5e-324;  // Smallest positive denormal.
    case 3:
      return 1e-310;  // Mid-range denormal.
    default:
      return rng->Uniform();
  }
}

/// Happiness-domain trap values: like TrapValue but never -0.0. Happiness
/// arrays (`cur`, cached rows, denominators) are sums/quotients of
/// non-negative products seeded from +0.0, so -0.0 cannot occur there —
/// that is precisely the domain property that makes the kernels' min/max
/// reductions order-independent (see the contract in common/simd.h).
/// Coordinates MAY carry -0.0 (validation admits it), which the other
/// generators exercise.
double TrapHappiness(Rng* rng) {
  const double v = TrapValue(rng);
  return BitEq(v, -0.0) ? 0.0 : v;
}

/// m directions by d dims, dimension-major, with traps.
simd::ColumnBlock TrapBlock(size_t m, size_t d, Rng* rng) {
  simd::ColumnBlock block(static_cast<int>(d));
  std::vector<double> row(d);
  std::vector<double> prev(d, 0.0);
  for (size_t j = 0; j < m; ++j) {
    if (j > 0 && rng->UniformInt(7) == 0) {
      row = prev;  // Exact duplicate row.
    } else if (rng->UniformInt(11) == 0) {
      std::fill(row.begin(), row.end(), 0.0);  // All-zero row.
    } else {
      for (size_t k = 0; k < d; ++k) row[k] = TrapValue(rng);
    }
    prev = row;
    block.Append(row.data());
  }
  return block;
}

std::vector<double> TrapPoints(size_t n, size_t d, Rng* rng) {
  std::vector<double> pts(n * d);
  for (double& v : pts) v = TrapValue(rng);
  return pts;
}

const size_t kDims[] = {2, 3, 6, 7};
const size_t kNetSizes[] = {1, 7, 333};
const size_t kRowCounts[] = {1, 5, 8, 129};

TEST(SimdModeTest, ParseAcceptsExactlyAutoAndOff) {
  ASSERT_TRUE(simd::ParseSimdMode("auto").ok());
  EXPECT_EQ(*simd::ParseSimdMode("auto"), simd::SimdMode::kAuto);
  ASSERT_TRUE(simd::ParseSimdMode("off").ok());
  EXPECT_EQ(*simd::ParseSimdMode("off"), simd::SimdMode::kOff);
  for (const char* bad : {"", "AUTO", "Off", "on", "avx2", "scalar", "0"}) {
    EXPECT_FALSE(simd::ParseSimdMode(bad).ok()) << bad;
  }
}

TEST(SimdModeTest, ValidateSimdEnvRefusesUnknownValues) {
  // ValidateSimdEnv re-reads the environment on every call (unlike the
  // lazy one-shot consumption in the dispatcher), so it is testable here.
  ::setenv("FAIRHMS_SIMD", "off", 1);
  EXPECT_TRUE(simd::ValidateSimdEnv().ok());
  ::setenv("FAIRHMS_SIMD", "auto", 1);
  EXPECT_TRUE(simd::ValidateSimdEnv().ok());
  ::setenv("FAIRHMS_SIMD", "", 1);
  EXPECT_TRUE(simd::ValidateSimdEnv().ok());
  ::setenv("FAIRHMS_SIMD", "avx512", 1);
  const Status st = simd::ValidateSimdEnv();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("avx512"), std::string::npos);
  ::unsetenv("FAIRHMS_SIMD");
  EXPECT_TRUE(simd::ValidateSimdEnv().ok());
}

TEST(SimdModeTest, OffForcesScalarAndAutoRestoresDetected) {
  ModeGuard guard;
  simd::SetMode(simd::SimdMode::kOff);
  EXPECT_EQ(simd::Mode(), simd::SimdMode::kOff);
  EXPECT_EQ(simd::ActiveLevel(), simd::DispatchLevel::kScalar);
  simd::SetMode(simd::SimdMode::kAuto);
  EXPECT_EQ(simd::Mode(), simd::SimdMode::kAuto);
  EXPECT_EQ(simd::ActiveLevel(), simd::DetectedLevel());
}

TEST(SimdModeTest, LayoutKeyTracksActiveLevel) {
  ModeGuard guard;
  simd::SetMode(simd::SimdMode::kOff);
  const uint32_t off_key = simd::LayoutKey();
  simd::SetMode(simd::SimdMode::kAuto);
  const uint32_t auto_key = simd::LayoutKey();
  if (simd::DetectedLevel() != simd::DispatchLevel::kScalar) {
    EXPECT_NE(off_key, auto_key);
  } else {
    EXPECT_EQ(off_key, auto_key);
  }
  EXPECT_EQ(off_key >> 8, static_cast<uint32_t>(simd::kLayoutVersion));
}

TEST(SimdKernelTest, NetBestAndHappinessAndMhrBitIdentical) {
  ModeGuard guard;
  Rng rng(101);
  for (size_t d : kDims) {
    for (size_t m : kNetSizes) {
      for (size_t n : kRowCounts) {
        const simd::ColumnBlock net = TrapBlock(m, d, &rng);
        const std::vector<double> pts = TrapPoints(n, d, &rng);

        simd::SetMode(simd::SimdMode::kOff);
        std::vector<double> best_off(m, 0.0);
        simd::NetBestRange(net.cols(), 0, m, pts.data(), n, d,
                           best_off.data());
        std::vector<double> hap_off(m, 0.0);
        simd::HappinessRange(net.cols(), 0, m, pts.data(), d, best_off.data(),
                             1e-12, hap_off.data());
        const double mhr_off = simd::MhrRange(net.cols(), 0, std::min(m, simd::kDirTile),
                                              best_off.data(), 1e-12,
                                              pts.data(), n, d);

        simd::SetMode(simd::SimdMode::kAuto);
        std::vector<double> best_auto(m, 0.0);
        simd::NetBestRange(net.cols(), 0, m, pts.data(), n, d,
                           best_auto.data());
        std::vector<double> hap_auto(m, 0.0);
        simd::HappinessRange(net.cols(), 0, m, pts.data(), d,
                             best_auto.data(), 1e-12, hap_auto.data());
        const double mhr_auto = simd::MhrRange(net.cols(), 0, std::min(m, simd::kDirTile),
                                               best_auto.data(), 1e-12,
                                               pts.data(), n, d);

        EXPECT_TRUE(BitsEqual(best_off, best_auto)) << "d=" << d << " m=" << m
                                                    << " n=" << n;
        EXPECT_TRUE(BitsEqual(hap_off, hap_auto)) << "d=" << d << " m=" << m
                                                  << " n=" << n;
        EXPECT_TRUE(BitEq(mhr_off, mhr_auto)) << "d=" << d << " m=" << m
                                              << " n=" << n;
      }
    }
  }
}

TEST(SimdKernelTest, MhrRangeMatchesPerRowDivisionFormulation) {
  ModeGuard guard;
  simd::SetMode(simd::SimdMode::kAuto);
  Rng rng(202);
  const size_t d = 6, m = 333, n = 40;
  const simd::ColumnBlock net = TrapBlock(m, d, &rng);
  const std::vector<double> pts = TrapPoints(n, d, &rng);
  std::vector<double> best(m, 0.0);
  simd::NetBestRange(net.cols(), 0, m, pts.data(), n, d, best.data());
  const double hoisted =
      simd::MhrRange(net.cols(), 0, m, best.data(), 1e-12, pts.data(), n, d);
  // Naive max_r min(1, s_r / b) per direction: the kernel hoists the
  // division (max selects an element, division by a positive constant is
  // monotone), which must match bit for bit, not approximately.
  double naive = 1.0;
  for (size_t j = 0; j < m; ++j) {
    double hr;
    if (best[j] <= 1e-12) {
      hr = 1.0;
    } else {
      hr = 0.0;
      for (size_t r = 0; r < n; ++r) {
        double s = 0.0;
        for (size_t k = 0; k < d; ++k) s += net.cols()[k][j] * pts[r * d + k];
        hr = std::max(hr, std::min(1.0, s / best[j]));
      }
    }
    naive = std::min(naive, hr);
  }
  EXPECT_TRUE(BitEq(hoisted, naive)) << hoisted << " vs " << naive;
}

TEST(SimdKernelTest, TruncatedGainKernelsBitIdentical) {
  ModeGuard guard;
  Rng rng(303);
  for (size_t d : kDims) {
    for (size_t m : kNetSizes) {
      const simd::ColumnBlock net = TrapBlock(m, d, &rng);
      const std::vector<double> p = TrapPoints(1, d, &rng);
      std::vector<double> best(m), cur(m), hrow(m);
      for (double& v : best) v = rng.Uniform();
      for (double& v : cur) v = TrapHappiness(&rng);
      for (double& v : hrow) v = TrapHappiness(&rng);
      const double tau = 0.85;

      simd::SetMode(simd::SimdMode::kOff);
      const double gc_off = simd::TruncGainCached(hrow.data(), cur.data(), m, tau);
      const double ge_off =
          simd::TruncGainEval(net.cols(), m, p.data(), d, best.data(), 1e-12,
                              cur.data(), tau);
      const double ts_off = simd::TruncSum(cur.data(), m, tau);
      const double mr_off = simd::MinReduce(cur.data(), m);
      std::vector<double> acc_off = cur;
      simd::MaxAccumulate(hrow.data(), acc_off.data(), m);
      std::vector<double> add_off = cur;
      simd::AddHappinessMax(net.cols(), 0, m, p.data(), d, best.data(), 1e-12,
                            add_off.data());

      simd::SetMode(simd::SimdMode::kAuto);
      const double gc_auto = simd::TruncGainCached(hrow.data(), cur.data(), m, tau);
      const double ge_auto =
          simd::TruncGainEval(net.cols(), m, p.data(), d, best.data(), 1e-12,
                              cur.data(), tau);
      const double ts_auto = simd::TruncSum(cur.data(), m, tau);
      const double mr_auto = simd::MinReduce(cur.data(), m);
      std::vector<double> acc_auto = cur;
      simd::MaxAccumulate(hrow.data(), acc_auto.data(), m);
      std::vector<double> add_auto = cur;
      simd::AddHappinessMax(net.cols(), 0, m, p.data(), d, best.data(), 1e-12,
                            add_auto.data());

      EXPECT_TRUE(BitEq(gc_off, gc_auto)) << "d=" << d << " m=" << m;
      EXPECT_TRUE(BitEq(ge_off, ge_auto)) << "d=" << d << " m=" << m;
      EXPECT_TRUE(BitEq(ts_off, ts_auto)) << "d=" << d << " m=" << m;
      EXPECT_TRUE(BitEq(mr_off, mr_auto)) << "d=" << d << " m=" << m;
      EXPECT_TRUE(BitsEqual(acc_off, acc_auto)) << "d=" << d << " m=" << m;
      EXPECT_TRUE(BitsEqual(add_off, add_auto)) << "d=" << d << " m=" << m;
    }
  }
}

TEST(SimdKernelTest, MinReduceOfEmptyIsOne) {
  EXPECT_EQ(simd::MinReduce(nullptr, 0), 1.0);
}

TEST(SimdKernelTest, RowSumsAndDominanceBitIdentical) {
  ModeGuard guard;
  Rng rng(404);
  for (size_t d : kDims) {
    for (size_t n : kRowCounts) {
      const simd::ColumnBlock block = TrapBlock(n, d, &rng);
      // Probe points: fresh traps, exact copies of block rows (a point
      // never strictly dominates its duplicate), and all-zeros.
      std::vector<std::vector<double>> probes;
      probes.push_back(TrapPoints(1, d, &rng));
      std::vector<double> dup(d);
      for (size_t k = 0; k < d; ++k) dup[k] = block.cols()[k][n / 2];
      probes.push_back(dup);
      probes.emplace_back(d, 0.0);

      simd::SetMode(simd::SimdMode::kOff);
      std::vector<double> sums_off(block.padded_rows(), 0.0);
      simd::RowSums(block.cols(), n, d, sums_off.data());
      std::vector<int> dom_off, weak_off;
      for (const auto& p : probes) {
        dom_off.push_back(simd::AnyDominates(block.cols(), n, d, p.data()));
        weak_off.push_back(
            simd::AnyWeaklyDominates(block.cols(), n, d, p.data()));
      }

      simd::SetMode(simd::SimdMode::kAuto);
      std::vector<double> sums_auto(block.padded_rows(), 0.0);
      simd::RowSums(block.cols(), n, d, sums_auto.data());
      std::vector<int> dom_auto, weak_auto;
      for (const auto& p : probes) {
        dom_auto.push_back(simd::AnyDominates(block.cols(), n, d, p.data()));
        weak_auto.push_back(
            simd::AnyWeaklyDominates(block.cols(), n, d, p.data()));
      }

      EXPECT_TRUE(BitsEqual(sums_off, sums_auto)) << "d=" << d << " n=" << n;
      EXPECT_EQ(dom_off, dom_auto) << "d=" << d << " n=" << n;
      EXPECT_EQ(weak_off, weak_auto) << "d=" << d << " n=" << n;
      // A duplicate of a block row is weakly dominated but never strictly
      // dominated by that row (it can still be strictly dominated by some
      // other row, so only the weak direction is asserted).
      EXPECT_TRUE(weak_off[1]);
    }
  }
}

TEST(SimdKernelTest, DominancePaddingIsNeverAWitness) {
  ModeGuard guard;
  simd::SetMode(simd::SimdMode::kAuto);
  // Three all-zero rows (padded out to kPadRows with more zeros). An
  // all-zero probe is weakly dominated by the real rows, but nothing
  // strictly dominates it — if a vector path read the zero padding as
  // data the strict check would still be false, but an n=0 block must
  // return false for both even though its padding compares >= everywhere.
  const size_t d = 3;
  simd::ColumnBlock block(static_cast<int>(d));
  const std::vector<double> zero(d, 0.0);
  for (int i = 0; i < 3; ++i) block.Append(zero.data());
  EXPECT_FALSE(simd::AnyDominates(block.cols(), 3, d, zero.data()));
  EXPECT_TRUE(simd::AnyWeaklyDominates(block.cols(), 3, d, zero.data()));
  // Zero rows, padded capacity present: no witness of any kind.
  simd::ColumnBlock empty(static_cast<int>(d));
  empty.ResizeRows(0);
  EXPECT_FALSE(simd::AnyDominates(empty.cols(), 0, d, zero.data()));
  EXPECT_FALSE(simd::AnyWeaklyDominates(empty.cols(), 0, d, zero.data()));
}

TEST(SimdKernelTest, ColMinMaxHandlesSignedZeroAndDenormals) {
  ModeGuard guard;
  const std::vector<double> x = {0.5, -0.0, 5e-324, 0.0, 1e-310, 0.25, -0.0};
  for (simd::SimdMode mode :
       {simd::SimdMode::kOff, simd::SimdMode::kAuto}) {
    simd::SetMode(mode);
    double mn = 1e300, mx = -1e300;
    simd::ColMinMax(x.data(), x.size(), &mn, &mx);
    // std::min/std::max keep the first argument on ties, so the scalar
    // visit order pins which zero representation wins; ColMinMax stays
    // scalar at every level precisely so this is reproducible.
    double ref_mn = 1e300, ref_mx = -1e300;
    for (double v : x) {
      ref_mn = std::min(ref_mn, v);
      ref_mx = std::max(ref_mx, v);
    }
    EXPECT_TRUE(BitEq(mn, ref_mn));
    EXPECT_TRUE(BitEq(mx, ref_mx));
    double a = 1.0, b = 2.0;
    simd::ColMinMax(x.data(), 0, &a, &b);  // n == 0: outputs untouched.
    EXPECT_EQ(a, 1.0);
    EXPECT_EQ(b, 2.0);
  }
}

// ---------------------------------------------------------------------------
// Evaluator-level identity: the same solves, end to end, in both modes.

struct EvalProbe {
  std::vector<double> best;
  std::vector<double> cached;
  double mhr = 0.0;
  double gain = 0.0;
  double gain_uncached = 0.0;
  double value = 0.0;
  double net_mhr = 0.0;
  std::vector<int> skyline;
  std::vector<double> regrets;
};

EvalProbe RunPipeline(const Dataset& data, const std::vector<int>& rows,
                      int threads) {
  Rng rng(77);
  const UtilityNet net =
      UtilityNet::SampleRandom(data.dim(), 222, &rng);
  EvalProbe out;
  NetEvaluator eval(&data, &net, rows, threads);
  out.best.assign(eval.best_data(), eval.best_data() + net.size());
  std::vector<int> half(rows.begin(), rows.begin() + rows.size() / 2 + 1);
  eval.CacheCandidates(half);
  out.cached.assign(eval.cached_row(half[0]),
                    eval.cached_row(half[0]) + net.size());
  out.mhr = eval.Mhr(half);
  TruncatedMhrState state(&eval);
  state.Add(half[0]);
  out.gain = state.MarginalGain(half.back(), 0.9);
  out.gain_uncached = state.MarginalGain(rows.back(), 0.9);
  state.Add(rows.back());
  out.value = state.TruncatedValue(0.9);
  out.net_mhr = state.NetMhr();
  out.skyline = ComputeSkyline(data, rows, {});
  out.regrets = AllWitnessRegretsLp(data, rows, half, threads);
  return out;
}

TEST(SimdEvaluatorTest, PipelineBitIdenticalAcrossModesAndThreads) {
  ModeGuard guard;
  Rng rng(55);
  Dataset data = GenIndependent(160, 6, &rng).NormalizedMinMax();
  // Tombstones: erase a slice so every pack path sees non-contiguous rows.
  ASSERT_TRUE(data.ErasePoints({3, 4, 5, 50, 119}).ok());
  const std::vector<int> rows = data.LiveRows();

  simd::SetMode(simd::SimdMode::kOff);
  const EvalProbe ref = RunPipeline(data, rows, /*threads=*/1);
  for (int threads : {1, 3}) {
    for (simd::SimdMode mode :
         {simd::SimdMode::kOff, simd::SimdMode::kAuto}) {
      simd::SetMode(mode);
      const EvalProbe got = RunPipeline(data, rows, threads);
      SCOPED_TRACE(StrFormat("threads=%d mode=%s", threads,
                             simd::SimdModeName(mode)));
      EXPECT_TRUE(BitsEqual(ref.best, got.best));
      EXPECT_TRUE(BitsEqual(ref.cached, got.cached));
      EXPECT_TRUE(BitEq(ref.mhr, got.mhr));
      EXPECT_TRUE(BitEq(ref.gain, got.gain));
      EXPECT_TRUE(BitEq(ref.gain_uncached, got.gain_uncached));
      EXPECT_TRUE(BitEq(ref.value, got.value));
      EXPECT_TRUE(BitEq(ref.net_mhr, got.net_mhr));
      EXPECT_EQ(ref.skyline, got.skyline);
      EXPECT_TRUE(BitsEqual(ref.regrets, got.regrets));
    }
  }
}

TEST(SimdEvaluatorTest, NormalizationBitIdenticalAcrossModesAndStorage) {
  ModeGuard guard;
  Rng rng(66);
  const Dataset data = GenIndependent(70, 3, &rng);
  simd::SetMode(simd::SimdMode::kOff);
  const Dataset ref_minmax = data.NormalizedMinMax();
  const Dataset ref_max = data.ScaledByMax();
  for (simd::SimdMode mode :
       {simd::SimdMode::kOff, simd::SimdMode::kAuto}) {
    simd::SetMode(mode);
    const Dataset a = data.NormalizedMinMax();
    const Dataset b = data.ScaledByMax();
    for (size_t i = 0; i < 70; ++i) {
      for (int j = 0; j < 3; ++j) {
        // Mode must not change the scaling, and the row-major values and
        // the dimension-major columns must stay in exact agreement.
        EXPECT_TRUE(BitEq(a.at(i, j), ref_minmax.at(i, j)));
        EXPECT_TRUE(BitEq(b.at(i, j), ref_max.at(i, j)));
        EXPECT_TRUE(BitEq(a.at(i, j), a.column(j)[i]));
        EXPECT_TRUE(BitEq(b.at(i, j), b.column(j)[i]));
      }
    }
  }
}

TEST(SimdEvaluatorTest, TombstonedNormalizationIgnoresErasedOutlier) {
  ModeGuard guard;
  simd::SetMode(simd::SimdMode::kAuto);
  // Row 2 is an outlier; erased, it must not stretch the live rows' range
  // on either storage side.
  Dataset data = MakeDataset({{0.2, 0.4}, {0.6, 0.8}, {100.0, 100.0}});
  ASSERT_TRUE(data.ErasePoints({2}).ok());
  const Dataset norm = data.NormalizedMinMax();
  EXPECT_TRUE(BitEq(norm.at(0, 0), 0.0));
  EXPECT_TRUE(BitEq(norm.at(1, 0), 1.0));
  EXPECT_TRUE(BitEq(norm.at(1, 1), 1.0));
  EXPECT_TRUE(BitEq(norm.at(0, 0), norm.column(0)[0]));
  EXPECT_TRUE(BitEq(norm.at(1, 1), norm.column(1)[1]));
}

TEST(ScratchBufferTest, ResizePreservesDataWithinCapacityAndTracksSize) {
  simd::ScratchPoolTrim();
  simd::ScratchBuffer buf;
  EXPECT_TRUE(buf.empty());
  buf.ResizeUninitialized(100);
  ASSERT_EQ(buf.size(), 100u);
  for (size_t i = 0; i < 100; ++i) buf[i] = static_cast<double>(i);
  // Shrinking and re-growing within capacity must not move the allocation
  // (CacheCandidates relies on rewriting every cell, not on the resize).
  double* data = buf.data();
  buf.ResizeUninitialized(10);
  EXPECT_EQ(buf.size(), 10u);
  buf.ResizeUninitialized(100);
  EXPECT_EQ(buf.data(), data);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(BitEq(buf[i], static_cast<double>(i)));
  }
}

TEST(ScratchBufferTest, ReleaseRecyclesThroughPool) {
  simd::ScratchPoolTrim();
  ASSERT_EQ(simd::ScratchPoolIdleBytes(), 0u);
  double* first = nullptr;
  {
    simd::ScratchBuffer buf;
    buf.ResizeUninitialized(1 << 12);
    first = buf.data();
  }  // Destructor releases to the pool.
  EXPECT_EQ(simd::ScratchPoolIdleBytes(), (1u << 12) * sizeof(double));
  simd::ScratchBuffer reuse;
  reuse.ResizeUninitialized(1 << 10);  // Smaller request, pooled block fits.
  EXPECT_EQ(reuse.data(), first);
  EXPECT_EQ(simd::ScratchPoolIdleBytes(), 0u);
  reuse.Release();
  simd::ScratchPoolTrim();
  EXPECT_EQ(simd::ScratchPoolIdleBytes(), 0u);
}

TEST(ScratchBufferTest, MoveTransfersOwnership) {
  simd::ScratchPoolTrim();
  simd::ScratchBuffer a;
  a.ResizeUninitialized(16);
  for (size_t i = 0; i < 16; ++i) a[i] = 3.5;
  simd::ScratchBuffer b = std::move(a);
  ASSERT_EQ(b.size(), 16u);
  EXPECT_TRUE(BitEq(b[7], 3.5));
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move): documented.
  simd::ScratchPoolTrim();
}

}  // namespace
}  // namespace fairhms
