#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace fairhms {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatesHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<size_t>(v)];
  }
  // Rough uniformity: each bucket within 20% of expectation.
  for (int c : counts) EXPECT_NEAR(c, 5000, 1000);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const double lambda = 2.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(29);
  const double mean = 3.0;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Poisson(mean);
  EXPECT_NEAR(sum / n, mean, 0.1);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(31);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalAllZeroWeightsReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), 0u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  // The child stream should not replay the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == child.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.01);
}

}  // namespace
}  // namespace fairhms
