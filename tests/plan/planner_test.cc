// Planner: capability-driven candidate filtering, cold-model defaults,
// budget/target selection and — the contract everything else leans on —
// byte-for-byte deterministic plans for identical (request, model) pairs,
// across repeats and across threads.

#include "plan/planner.h"

#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/params.h"
#include "api/registry.h"
#include "plan/cost_model.h"

namespace fairhms {
namespace {

PlanRequest Req(int d, uint64_t n = 1000, int k = 8, int groups = 2,
                double tightness = 0.3, bool warm = false) {
  PlanRequest req;
  req.d = d;
  req.n = n;
  req.k = k;
  req.num_groups = groups;
  req.bounds_tightness = tightness;
  req.cache_warm = warm;
  return req;
}

CostSignature SigFor(const PlanRequest& r) {
  return CostSignature::Make(r.d, r.n, r.k, r.num_groups, r.bounds_tightness,
                             r.cache_warm);
}

TEST(PlannerTest, ColdModelDefaultsByDimension) {
  const CostModel cold;
  auto plan2d = Planner::PlanQuery(Req(2), cold);
  ASSERT_TRUE(plan2d.ok());
  EXPECT_EQ(plan2d->algorithm, "intcov");
  EXPECT_EQ(plan2d->predicted_ms, -1.0);
  EXPECT_NE(plan2d->reason.find("cold model"), std::string::npos);

  auto plan6d = Planner::PlanQuery(Req(6), cold);
  ASSERT_TRUE(plan6d.ok());
  EXPECT_EQ(plan6d->algorithm, "bigreedy");
  EXPECT_NE(plan6d->reason.find("cold model"), std::string::npos);
}

TEST(PlannerTest, NeverPicksLossyExact2dOnHigherDimensionalData) {
  // Train intcov as the apparently best algorithm, then ask for 5-d data:
  // the planner must refuse the silent projection and pick elsewhere.
  CostModel model;
  const PlanRequest req = Req(5);
  model.Observe("intcov", SigFor(req), 0.001, 1.0);
  auto plan = Planner::PlanQuery(req, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->algorithm, "intcov");
}

TEST(PlannerTest, NeverPicksFairnessUnawareAlgorithms) {
  CostModel model;
  const PlanRequest req = Req(4);
  // Make every unconstrained baseline look unbeatable.
  for (const char* name : {"hs", "sphere", "rdp_greedy", "dmm"}) {
    model.Observe(name, SigFor(req), 0.0001, 1.0);
  }
  model.Observe("fair_greedy", SigFor(req), 50.0, 0.8);
  auto plan = Planner::PlanQuery(req, model);
  ASSERT_TRUE(plan.ok());
  const AlgorithmInfo* info =
      AlgorithmRegistry::Instance().Find(plan->algorithm);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->caps.fairness_aware) << plan->algorithm;
}

TEST(PlannerTest, PicksBestMeasuredQualityWithoutConstraints) {
  CostModel model;
  const PlanRequest req = Req(4);
  model.Observe("bigreedy", SigFor(req), 5.0, 0.95);
  model.Observe("fair_greedy", SigFor(req), 1.0, 0.80);
  auto plan = Planner::PlanQuery(req, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, "bigreedy");
  EXPECT_DOUBLE_EQ(plan->predicted_ms, 5.0);
  EXPECT_DOUBLE_EQ(plan->predicted_hr, 0.95);
  EXPECT_NE(plan->reason.find("best measured quality"), std::string::npos);
}

TEST(PlannerTest, LatencyBudgetExcludesSlowCandidates) {
  CostModel model;
  PlanRequest req = Req(4);
  model.Observe("bigreedy", SigFor(req), 50.0, 0.95);
  model.Observe("fair_greedy", SigFor(req), 1.0, 0.80);
  req.latency_budget_ms = 10.0;
  auto plan = Planner::PlanQuery(req, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, "fair_greedy");
  EXPECT_NE(plan->reason.find("within the latency budget"),
            std::string::npos);
}

TEST(PlannerTest, QualityTargetPicksCheapestSufficientCandidate) {
  CostModel model;
  PlanRequest req = Req(4);
  model.Observe("bigreedy", SigFor(req), 50.0, 0.95);
  model.Observe("fair_greedy", SigFor(req), 1.0, 0.85);
  model.Observe("g_greedy", SigFor(req), 5.0, 0.90);
  req.quality_target = 0.84;
  auto plan = Planner::PlanQuery(req, model);
  ASSERT_TRUE(plan.ok());
  // Both fair_greedy and g_greedy meet the target; fair_greedy is cheaper.
  EXPECT_EQ(plan->algorithm, "fair_greedy");
  EXPECT_NE(plan->reason.find("meeting the quality target"),
            std::string::npos);

  req.quality_target = 0.99;  // Unreachable: degrade to best quality.
  plan = Planner::PlanQuery(req, model);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, "bigreedy");
  EXPECT_NE(plan->reason.find("quality target unreachable"),
            std::string::npos);
}

TEST(PlannerTest, InfeasibleBudgetDegradesToFastestAndShrinksNet) {
  CostModel model;
  PlanRequest req = Req(4);
  model.Observe("bigreedy", SigFor(req), 50.0, 0.95);
  req.latency_budget_ms = 0.5;  // Below every measured candidate.
  AlgoParams params;
  auto plan = Planner::PlanQuery(req, model, &params);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, "bigreedy");
  EXPECT_NE(plan->reason.find("latency budget infeasible"),
            std::string::npos);
  // Over budget + BiGreedy + no caller net_size: the planner trades net
  // resolution for speed and says so.
  ASSERT_TRUE(params.Has("net_size"));
  EXPECT_NE(plan->params_note.find("net_size="), std::string::npos);

  // Caller-set keys always win.
  AlgoParams pinned;
  pinned.SetInt("net_size", 999);
  plan = Planner::PlanQuery(req, model, &pinned);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->params_note, "");
}

TEST(PlannerTest, TieBreakIsSeededAndDeterministic) {
  // Two candidates with byte-identical estimates: only the seeded hash
  // (then the name) can order them. The same seed must always produce the
  // same winner; the winner must be one of the tied pair.
  CostModel model;
  const PlanRequest base = Req(4);
  model.Observe("fair_greedy", SigFor(base), 10.0, 0.9);
  model.Observe("g_greedy", SigFor(base), 10.0, 0.9);

  std::set<std::string> winners;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    PlanRequest req = base;
    req.seed = seed;
    auto first = Planner::PlanQuery(req, model);
    ASSERT_TRUE(first.ok());
    for (int repeat = 0; repeat < 3; ++repeat) {
      auto again = Planner::PlanQuery(req, model);
      ASSERT_TRUE(again.ok());
      EXPECT_EQ(again->algorithm, first->algorithm) << "seed " << seed;
    }
    EXPECT_TRUE(first->algorithm == "fair_greedy" ||
                first->algorithm == "g_greedy")
        << first->algorithm;
    winners.insert(first->algorithm);
  }
  // Not alphabetically biased: across seeds both candidates win sometimes.
  EXPECT_EQ(winners.size(), 2u);
}

TEST(PlannerTest, PlansAreDeterministicAcrossThreads) {
  CostModel model;
  const PlanRequest req = Req(4);
  model.Observe("bigreedy", SigFor(req), 5.0, 0.95);
  model.Observe("fair_greedy", SigFor(req), 1.0, 0.80);

  auto reference = Planner::PlanQuery(req, model);
  ASSERT_TRUE(reference.ok());

  constexpr int kThreads = 8;
  constexpr int kRepeats = 50;
  std::vector<std::string> got(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&req, &model, &got, t] {
      for (int i = 0; i < kRepeats; ++i) {
        auto plan = Planner::PlanQuery(req, model);
        if (!plan.ok() || (i > 0 && plan->algorithm != got[t])) {
          got[t] = "<mismatch>";
          return;
        }
        got[t] = plan->algorithm;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[t], reference->algorithm) << "thread " << t;
  }
}

}  // namespace
}  // namespace fairhms
