// CostModel: signature bucketing, running-mean cells, tiered prediction
// fallback, and the stable text form the catalog persists next to
// snapshots. Equal model states must serialize to equal bytes, and a
// round-trip must predict identically to the original.

#include "plan/cost_model.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace fairhms {
namespace {

CostSignature Sig(int d, uint64_t n, int k, int groups, double tightness,
                  bool warm) {
  return CostSignature::Make(d, n, k, groups, tightness, warm);
}

TEST(CostSignatureTest, BucketsAreLogarithmicAndClamped) {
  const CostSignature s = Sig(6, 10000, 16, 4, 0.5, true);
  EXPECT_EQ(s.d, 6);
  EXPECT_EQ(s.n_bucket, 13);  // floor(log2(10000)).
  EXPECT_EQ(s.k_bucket, 4);
  EXPECT_EQ(s.groups_bucket, 2);
  EXPECT_EQ(s.tightness_bucket, 2);  // round(4 * 0.5).
  EXPECT_TRUE(s.warm);

  // Degenerate inputs stay in range instead of under/overflowing.
  const CostSignature zero = Sig(1, 0, 0, 0, -3.0, false);
  EXPECT_EQ(zero.n_bucket, 0);
  EXPECT_EQ(zero.k_bucket, 0);
  EXPECT_EQ(zero.groups_bucket, 0);
  EXPECT_EQ(zero.tightness_bucket, 0);
  EXPECT_EQ(Sig(1, 1, 1, 1, 9.0, false).tightness_bucket, 4);
}

TEST(CostSignatureTest, OrderingIsConsistentWithEquality) {
  const CostSignature a = Sig(3, 100, 5, 2, 0.0, false);
  const CostSignature b = Sig(3, 100, 5, 2, 0.0, true);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

TEST(CostModelTest, ObserveAccumulatesRunningMeans) {
  CostModel model;
  const CostSignature sig = Sig(4, 1000, 8, 2, 0.3, false);
  model.Observe("bigreedy", sig, 10.0, 0.9);
  model.Observe("bigreedy", sig, 20.0, 0.7);
  EXPECT_EQ(model.observations(), 2u);

  const CostModel::Estimate est = model.Predict("bigreedy", sig);
  EXPECT_EQ(est.samples, 2u);
  EXPECT_EQ(est.tier, 0);
  EXPECT_DOUBLE_EQ(est.ms, 15.0);
  EXPECT_DOUBLE_EQ(est.happiness_ratio, 0.8);
}

TEST(CostModelTest, PredictFallsBackThroughTiers) {
  CostModel model;
  const CostSignature exact = Sig(4, 1000, 8, 2, 0.3, false);
  model.Observe("bigreedy", exact, 10.0, 0.9);

  // Tier 0: exact signature.
  EXPECT_EQ(model.Predict("bigreedy", exact).tier, 0);
  // Tier 1: only cache warmth differs.
  EXPECT_EQ(model.Predict("bigreedy", Sig(4, 1000, 8, 2, 0.3, true)).tier, 1);
  // Tier 2: tightness/groups differ, d/n/k buckets match.
  EXPECT_EQ(model.Predict("bigreedy", Sig(4, 1000, 8, 5, 1.0, true)).tier, 2);
  // Tier 3: same dimension only.
  EXPECT_EQ(model.Predict("bigreedy", Sig(4, 64, 2, 5, 1.0, true)).tier, 3);
  // Tier 4: any cell of the algorithm.
  EXPECT_EQ(model.Predict("bigreedy", Sig(9, 64, 2, 5, 1.0, true)).tier, 4);
  // Unknown algorithm: cold.
  const CostModel::Estimate cold = model.Predict("fair_greedy", exact);
  EXPECT_EQ(cold.samples, 0u);
  EXPECT_EQ(cold.tier, -1);
}

TEST(CostModelTest, MultiCellTiersCombineBySampleWeight) {
  CostModel model;
  // Two cells differing only in warmth: 1 sample at 10ms, 3 at 30ms.
  model.Observe("hs", Sig(4, 1000, 8, 2, 0.3, false), 10.0, 1.0);
  for (int i = 0; i < 3; ++i) {
    model.Observe("hs", Sig(4, 1000, 8, 2, 0.3, true), 30.0, 0.5);
  }
  // A probe with a different groups bucket skips tiers 0-1 and lands on
  // tier 2, which spans both cells.
  const CostModel::Estimate est =
      model.Predict("hs", Sig(4, 1000, 8, 16, 0.3, false));
  EXPECT_EQ(est.tier, 2);
  EXPECT_EQ(est.samples, 4u);
  EXPECT_DOUBLE_EQ(est.ms, (10.0 + 3 * 30.0) / 4.0);
  EXPECT_DOUBLE_EQ(est.happiness_ratio, (1.0 + 3 * 0.5) / 4.0);
}

TEST(CostModelTest, SerializeRoundTripPreservesPredictions) {
  CostModel model;
  model.Observe("bigreedy", Sig(4, 1000, 8, 2, 0.3, false), 12.5, 0.875);
  model.Observe("bigreedy", Sig(4, 1000, 8, 2, 0.3, true), 3.25, 0.875);
  model.Observe("intcov", Sig(2, 500, 5, 2, 0.6, false), 40.0, 1.0);

  const std::string text = model.Serialize();
  EXPECT_EQ(text.rfind("fairhms-cost-model v1\n", 0), 0u) << text;

  CostModel restored;
  ASSERT_TRUE(restored.Restore(text).ok());
  EXPECT_EQ(restored.observations(), model.observations());
  EXPECT_EQ(restored.Serialize(), text);  // Byte-stable round trip.

  const CostSignature probe = Sig(4, 1000, 8, 2, 0.3, true);
  const CostModel::Estimate a = model.Predict("bigreedy", probe);
  const CostModel::Estimate b = restored.Predict("bigreedy", probe);
  EXPECT_EQ(a.tier, b.tier);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_DOUBLE_EQ(a.ms, b.ms);
  EXPECT_DOUBLE_EQ(a.happiness_ratio, b.happiness_ratio);
}

TEST(CostModelTest, RestoreRejectsMalformedInputAndKeepsState) {
  CostModel model;
  model.Observe("bigreedy", Sig(4, 1000, 8, 2, 0.3, false), 10.0, 0.9);
  const std::string before = model.Serialize();

  EXPECT_EQ(model.Restore("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(model.Restore("some other header\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(model.Restore("fairhms-cost-model v1\nbigreedy 1 2\n").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      model.Restore("fairhms-cost-model v1\nhs 1 1 1 1 1 0 0 1.0 1.0\n")
          .code(),
      StatusCode::kInvalidArgument)
      << "zero-count cell must be rejected";

  // Failed restores leave the model untouched.
  EXPECT_EQ(model.Serialize(), before);

  // An empty (header-only) form is a valid cold model.
  ASSERT_TRUE(model.Restore("fairhms-cost-model v1\n").ok());
  EXPECT_EQ(model.observations(), 0u);
}

TEST(CostModelTest, ConcurrentObserversProduceTheFullCount) {
  CostModel model;
  const CostSignature sig = Sig(4, 1000, 8, 2, 0.3, false);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&model, &sig] {
      for (int i = 0; i < kPerThread; ++i) {
        model.Observe("bigreedy", sig, 5.0, 0.5);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(model.observations(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const CostModel::Estimate est = model.Predict("bigreedy", sig);
  EXPECT_DOUBLE_EQ(est.ms, 5.0);
  EXPECT_DOUBLE_EQ(est.happiness_ratio, 0.5);
}

}  // namespace
}  // namespace fairhms
