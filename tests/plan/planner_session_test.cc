// End-to-end `algorithm: "auto"` and warm-started re-solves through
// SolverSession: planned solves must be bit-identical to invoking the
// chosen algorithm directly, warm-started k-sweeps must be bit-identical
// to cold solves, and every ineligible warm hint (k jumps, seed changes,
// warm starts disabled) must fall back to the cold path — with every solve
// feeding the session's cost model.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/session.h"
#include "api/solver.h"
#include "common/random.h"
#include "data/generators.h"
#include "data/grouping.h"
#include "fairness/group_bounds.h"
#include "plan/cost_model.h"

namespace fairhms {
namespace {

struct Instance {
  Dataset data{1};
  Grouping grouping;
};

Instance MakeInstance(int dim = 4, uint64_t seed = 11, size_t n = 400) {
  Instance inst;
  Rng rng(seed);
  inst.data = GenIndependent(n, dim, &rng).NormalizedMinMax();
  inst.grouping = GroupBySumRank(inst.data, 2);
  return inst;
}

SolverRequest MakeRequest(const Instance& inst, const std::string& algo,
                          int k) {
  SolverRequest req;
  req.data = &inst.data;
  req.grouping = &inst.grouping;
  req.bounds = GroupBounds::Proportional(k, inst.grouping.Counts(), 0.3);
  req.algorithm = algo;
  req.threads = 1;
  return req;
}

void ExpectSameSolution(const SolverResult& a, const SolverResult& b,
                        const std::string& label) {
  EXPECT_EQ(a.solution.rows, b.solution.rows) << label;
  EXPECT_EQ(a.solution.mhr, b.solution.mhr) << label;  // Bit-identical.
  EXPECT_EQ(a.group_counts, b.group_counts) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
}

TEST(PlannerSessionTest, AutoSolveIsBitIdenticalToDirectSolve) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  auto planned = session->Solve(MakeRequest(inst, "auto", 8));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_TRUE(planned->plan.planned);
  EXPECT_EQ(planned->algorithm, "bigreedy");  // Cold default for 4-d data.
  EXPECT_FALSE(planned->plan.reason.empty());

  // Sending the chosen algorithm directly through a fresh session yields
  // the same bytes — the planner only selects, never changes semantics.
  auto direct_session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(direct_session.ok());
  auto direct = direct_session->Solve(MakeRequest(inst, "bigreedy", 8));
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_FALSE(direct->plan.planned);
  ExpectSameSolution(*planned, *direct, "auto vs direct");
}

TEST(PlannerSessionTest, AutoPicksExactIntcovOn2dData) {
  const Instance inst = MakeInstance(/*dim=*/2);
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());
  auto planned = session->Solve(MakeRequest(inst, "auto", 6));
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  EXPECT_EQ(planned->algorithm, "intcov");
}

TEST(PlannerSessionTest, EverySolveFeedsTheCostModel) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(session->cost_model()->observations(), 0u);
  ASSERT_TRUE(session->Solve(MakeRequest(inst, "fair_greedy", 8)).ok());
  EXPECT_EQ(session->cost_model()->observations(), 1u);
  ASSERT_TRUE(session->Solve(MakeRequest(inst, "auto", 8)).ok());
  EXPECT_EQ(session->cost_model()->observations(), 2u);

  // With a fair_greedy observation banked, auto now plans from data, and
  // the echo carries a prediction instead of the cold -1 sentinel.
  auto planned = session->Solve(MakeRequest(inst, "auto", 8));
  ASSERT_TRUE(planned.ok());
  EXPECT_TRUE(planned->plan.planned);
  EXPECT_GE(planned->plan.predicted_ms, 0.0);
  EXPECT_GE(planned->plan.predicted_hr, 0.0);
}

TEST(PlannerSessionTest, WarmKSweepIsBitIdenticalToColdSolves) {
  const Instance inst = MakeInstance();
  auto warm_session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(warm_session.ok());

  bool any_warm = false;
  for (int k = 8; k <= 12; ++k) {
    auto warm = warm_session->Solve(MakeRequest(inst, "bigreedy", k));
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    any_warm = any_warm || warm->warm_start_used;

    // A fresh session has no memo: always a cold binary search.
    auto cold_session = SolverSession::Create(&inst.data, &inst.grouping);
    ASSERT_TRUE(cold_session.ok());
    auto cold = cold_session->Solve(MakeRequest(inst, "bigreedy", k));
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_FALSE(cold->warm_start_used);
    ExpectSameSolution(*warm, *cold, "k=" + std::to_string(k));
  }
  // The sweep steps k by one each time, so at least one re-solve must have
  // accepted the warm hint (otherwise the fast path is dead code).
  EXPECT_TRUE(any_warm);
}

TEST(PlannerSessionTest, IneligibleHintsFallBackToColdSolves) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  auto first = session->Solve(MakeRequest(inst, "bigreedy", 8));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->warm_start_used);  // Nothing to warm-start from.

  // A multi-step k jump is outside the memo's one-step contract.
  auto jump = session->Solve(MakeRequest(inst, "bigreedy", 12));
  ASSERT_TRUE(jump.ok());
  EXPECT_FALSE(jump->warm_start_used);

  // A different seed changes every direction net: the memo is useless.
  SolverRequest reseeded = MakeRequest(inst, "bigreedy", 12);
  reseeded.seed = 1234;
  auto other_seed = session->Solve(reseeded);
  ASSERT_TRUE(other_seed.ok());
  EXPECT_FALSE(other_seed->warm_start_used);

  // Changed params invalidate the memo too.
  SolverRequest reparam = MakeRequest(inst, "bigreedy", 12);
  reparam.params.SetInt("net_size", 64);
  auto other_params = session->Solve(reparam);
  ASSERT_TRUE(other_params.ok());
  EXPECT_FALSE(other_params->warm_start_used);
}

TEST(PlannerSessionTest, AllowWarmStartFalseForcesTheColdPath) {
  const Instance inst = MakeInstance();
  auto session = SolverSession::Create(&inst.data, &inst.grouping);
  ASSERT_TRUE(session.ok());

  auto first = session->Solve(MakeRequest(inst, "bigreedy", 8));
  ASSERT_TRUE(first.ok());

  SolverRequest opted_out = MakeRequest(inst, "bigreedy", 8);
  opted_out.allow_warm_start = false;
  auto cold = session->Solve(opted_out);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->warm_start_used);
  ExpectSameSolution(*first, *cold, "warm start disabled");

  // Re-enabled, the identical re-solve takes the warm path — and still
  // returns the same bytes.
  auto warm = session->Solve(MakeRequest(inst, "bigreedy", 8));
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_start_used);
  ExpectSameSolution(*first, *warm, "warm re-solve");
}

TEST(PlannerSessionTest, OneShotSolverFacadeAcceptsAuto) {
  // Solver::Solve runs in a throwaway session: "auto" must still resolve
  // (cold defaults) even though no model state survives the call.
  const Instance inst = MakeInstance();
  auto result = Solver::Solve(MakeRequest(inst, "auto", 8));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->plan.planned);
  EXPECT_EQ(result->algorithm, "bigreedy");
}

}  // namespace
}  // namespace fairhms
