#include "utility/utility_net.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geom/vec.h"

namespace fairhms {
namespace {

TEST(UtilityNetTest, RandomVectorsAreUnitAndNonnegative) {
  Rng rng(1);
  const UtilityNet net = UtilityNet::SampleRandom(5, 500, &rng);
  EXPECT_EQ(net.size(), 500u);
  EXPECT_EQ(net.dim(), 5);
  for (size_t j = 0; j < net.size(); ++j) {
    EXPECT_NEAR(NormL2(net.vec(j), 5), 1.0, 1e-9);
    for (int i = 0; i < 5; ++i) EXPECT_GE(net.vec(j)[i], 0.0);
  }
}

TEST(UtilityNetTest, DeterministicGivenSeed) {
  Rng a(9), b(9);
  const UtilityNet n1 = UtilityNet::SampleRandom(3, 50, &a);
  const UtilityNet n2 = UtilityNet::SampleRandom(3, 50, &b);
  for (size_t j = 0; j < 50; ++j) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(n1.vec(j)[i], n2.vec(j)[i]);
    }
  }
}

TEST(UtilityNetTest, Grid2DEndpointsAreAxes) {
  const UtilityNet net = UtilityNet::Grid2D(11);
  EXPECT_EQ(net.size(), 11u);
  EXPECT_NEAR(net.vec(0)[0], 0.0, 1e-12);  // theta=0 -> (0,1).
  EXPECT_NEAR(net.vec(0)[1], 1.0, 1e-12);
  EXPECT_NEAR(net.vec(10)[0], 1.0, 1e-12);  // theta=pi/2 -> (1,0).
  EXPECT_NEAR(net.vec(10)[1], 0.0, 1e-12);
  for (size_t j = 0; j < net.size(); ++j) {
    EXPECT_NEAR(NormL2(net.vec(j), 2), 1.0, 1e-12);
  }
}

TEST(UtilityNetTest, Grid2DIsDeltaNetByConstruction) {
  // 91 grid points over the quarter circle: spacing = (pi/2)/90 = 1 degree;
  // every direction is within half a degree of a grid point.
  const UtilityNet net = UtilityNet::Grid2D(91);
  Rng rng(3);
  const double half_step = 0.5 * (3.14159265358979323846 / 2.0) / 90.0;
  for (int t = 0; t < 500; ++t) {
    double u[2] = {std::fabs(rng.Normal()), std::fabs(rng.Normal())};
    NormalizeL2(u, 2);
    EXPECT_GE(net.CoverageCos(u), std::cos(half_step) - 1e-12);
  }
}

TEST(UtilityNetTest, RandomNetCoversDirectionsStatistically) {
  // With m = 2000 samples in 3D, random directions should be covered within
  // a generous angular tolerance (statistical sanity, not a hard bound).
  Rng rng(5);
  const UtilityNet net = UtilityNet::SampleRandom(3, 2000, &rng);
  int misses = 0;
  const double cos_tol = std::cos(0.12);
  for (int t = 0; t < 300; ++t) {
    double u[3] = {std::fabs(rng.Normal()), std::fabs(rng.Normal()),
                   std::fabs(rng.Normal())};
    NormalizeL2(u, 3);
    if (net.CoverageCos(u) < cos_tol) ++misses;
  }
  EXPECT_LT(misses, 10);
}

TEST(UtilityNetTest, DeltaToSampleSizeMonotone) {
  EXPECT_GT(UtilityNet::DeltaToSampleSize(0.05, 3),
            UtilityNet::DeltaToSampleSize(0.1, 3));
  EXPECT_GT(UtilityNet::DeltaToSampleSize(0.1, 5),
            UtilityNet::DeltaToSampleSize(0.1, 3));
  EXPECT_GE(UtilityNet::DeltaToSampleSize(0.9, 2), 2u);
}

TEST(UtilityNetTest, SampleSizeToDeltaInvertsRoughly) {
  const int d = 3;
  for (double delta : {0.05, 0.1, 0.2}) {
    const size_t m = UtilityNet::DeltaToSampleSize(delta, d);
    const double back = UtilityNet::SampleSizeToDelta(m, d);
    EXPECT_NEAR(back, delta, delta * 0.2);
  }
}

TEST(UtilityNetTest, MhrErrorBoundMatchesLemma) {
  // Lemma 4.1: error <= 2*delta*d / (1 + delta*d).
  EXPECT_NEAR(UtilityNet::MhrErrorBound(0.1, 2), 0.4 / 1.2, 1e-12);
  EXPECT_NEAR(UtilityNet::MhrErrorBound(0.0, 4), 0.0, 1e-12);
  EXPECT_LT(UtilityNet::MhrErrorBound(0.01, 6), 0.12);
}

}  // namespace
}  // namespace fairhms
