#include "algo/fair_interval_cover.h"

#include <functional>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairhms {
namespace {

GroupBounds Bounds(int k, std::vector<int> lower, std::vector<int> upper) {
  auto b = GroupBounds::Explicit(k, std::move(lower), std::move(upper));
  EXPECT_TRUE(b.ok());
  return *b;
}

std::vector<GroupIntervalIndex> BuildGroups(
    std::vector<std::vector<CoverInterval>> per_group) {
  std::vector<GroupIntervalIndex> out(per_group.size());
  for (size_t c = 0; c < per_group.size(); ++c) {
    out[c].Build(std::move(per_group[c]));
  }
  return out;
}

/// Brute-force decision: enumerate all interval subsets, check coverage and
/// the fair-completion condition.
bool BruteDecide(const std::vector<std::vector<CoverInterval>>& per_group,
                 const GroupBounds& bounds) {
  struct Item {
    CoverInterval iv;
    int group;
  };
  std::vector<Item> items;
  for (size_t c = 0; c < per_group.size(); ++c) {
    for (const auto& iv : per_group[c]) {
      items.push_back({iv, static_cast<int>(c)});
    }
  }
  const size_t n = items.size();
  EXPECT_LE(n, 18u) << "brute force too large";
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<int> counts(per_group.size(), 0);
    std::vector<std::pair<double, double>> chosen;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) {
        ++counts[static_cast<size_t>(items[i].group)];
        chosen.push_back({items[i].iv.lo, items[i].iv.hi});
      }
    }
    // Fair completion condition.
    long long needed = 0;
    bool ok = true;
    for (size_t c = 0; c < counts.size(); ++c) {
      if (counts[c] > bounds.upper[c]) ok = false;
      needed += std::max(counts[c], bounds.lower[c]);
    }
    if (!ok || needed > bounds.k) continue;
    // Coverage check.
    std::sort(chosen.begin(), chosen.end());
    double reach = 0.0;
    for (const auto& [lo, hi] : chosen) {
      if (lo > reach + 1e-12) break;
      reach = std::max(reach, hi);
    }
    if (reach >= 1.0 - 1e-12) return true;
  }
  return false;
}

TEST(GroupIntervalIndexTest, QueryReturnsBestEligible) {
  GroupIntervalIndex idx;
  idx.Build({{0.0, 0.4, 1}, {0.3, 0.9, 2}, {0.5, 1.0, 3}});
  double hi;
  int row;
  ASSERT_TRUE(idx.Query(0.0, 1e-9, &hi, &row));
  EXPECT_DOUBLE_EQ(hi, 0.4);
  EXPECT_EQ(row, 1);
  ASSERT_TRUE(idx.Query(0.35, 1e-9, &hi, &row));
  EXPECT_DOUBLE_EQ(hi, 0.9);
  EXPECT_EQ(row, 2);
  ASSERT_TRUE(idx.Query(0.6, 1e-9, &hi, &row));
  EXPECT_DOUBLE_EQ(hi, 1.0);
  EXPECT_EQ(row, 3);
  EXPECT_FALSE(GroupIntervalIndex().Query(0.5, 1e-9, &hi, &row));
}

TEST(FairIntervalCoverTest, SimpleYesInstance) {
  auto dp = FairIntervalCoverDp::Create(Bounds(2, {1, 1}, {1, 1}), 1 << 20);
  ASSERT_TRUE(dp.ok());
  auto groups = BuildGroups({{{0.0, 0.6, 10}}, {{0.5, 1.0, 20}}});
  std::vector<int> sol;
  ASSERT_TRUE(dp->Decide(groups, 1e-9, &sol));
  std::sort(sol.begin(), sol.end());
  EXPECT_EQ(sol, (std::vector<int>{10, 20}));
}

TEST(FairIntervalCoverTest, NoWhenGapExists) {
  auto dp = FairIntervalCoverDp::Create(Bounds(2, {0, 0}, {2, 2}), 1 << 20);
  ASSERT_TRUE(dp.ok());
  // Gap between 0.4 and 0.5.
  auto groups = BuildGroups({{{0.0, 0.4, 1}}, {{0.5, 1.0, 2}}});
  std::vector<int> sol;
  EXPECT_FALSE(dp->Decide(groups, 1e-9, &sol));
}

TEST(FairIntervalCoverTest, NoWhenFairnessBlocksCover) {
  // Group 0 could cover alone with 2 picks, but h_0 = 1 and group 1's
  // reserved slot leaves no room.
  auto dp = FairIntervalCoverDp::Create(Bounds(2, {0, 1}, {1, 1}), 1 << 20);
  ASSERT_TRUE(dp.ok());
  auto groups = BuildGroups(
      {{{0.0, 0.6, 1}, {0.5, 1.0, 2}}, {{0.2, 0.3, 3}}});
  std::vector<int> sol;
  EXPECT_FALSE(dp->Decide(groups, 1e-9, &sol));
}

TEST(FairIntervalCoverTest, YesWhenBudgetAllowsBoth) {
  // Same instance but k = 3 frees the second group-0 slot.
  auto dp = FairIntervalCoverDp::Create(Bounds(3, {0, 1}, {2, 1}), 1 << 20);
  ASSERT_TRUE(dp.ok());
  auto groups = BuildGroups(
      {{{0.0, 0.6, 1}, {0.5, 1.0, 2}}, {{0.2, 0.3, 3}}});
  std::vector<int> sol;
  ASSERT_TRUE(dp->Decide(groups, 1e-9, &sol));
  std::sort(sol.begin(), sol.end());
  EXPECT_EQ(sol, (std::vector<int>{1, 2}));  // Group 1 padding happens later.
}

TEST(FairIntervalCoverTest, TouchingEndpointsCount) {
  auto dp = FairIntervalCoverDp::Create(Bounds(2, {0, 0}, {2, 2}), 1 << 20);
  ASSERT_TRUE(dp.ok());
  auto groups = BuildGroups({{{0.0, 0.5, 1}}, {{0.5, 1.0, 2}}});
  std::vector<int> sol;
  EXPECT_TRUE(dp->Decide(groups, 1e-9, &sol));
}

TEST(FairIntervalCoverTest, CreateRefusesHugeStateSpace) {
  auto dp = FairIntervalCoverDp::Create(
      Bounds(30, std::vector<int>(8, 0), std::vector<int>(8, 30)), 1000);
  EXPECT_FALSE(dp.ok());
  EXPECT_EQ(dp.status().code(), StatusCode::kResourceExhausted);
}

TEST(FairIntervalCoverTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(4242);
  int yes = 0;
  int no = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const int c_num = 1 + static_cast<int>(rng.UniformInt(3));
    const int k = 1 + static_cast<int>(rng.UniformInt(4));
    std::vector<int> lower(static_cast<size_t>(c_num)), upper(static_cast<size_t>(c_num));
    long long sum_l = 0, sum_h = 0;
    for (int c = 0; c < c_num; ++c) {
      lower[static_cast<size_t>(c)] = static_cast<int>(rng.UniformInt(2));
      upper[static_cast<size_t>(c)] =
          lower[static_cast<size_t>(c)] + static_cast<int>(rng.UniformInt(3));
      sum_l += lower[static_cast<size_t>(c)];
      sum_h += upper[static_cast<size_t>(c)];
    }
    if (sum_l > k || sum_h < k) continue;
    const GroupBounds bounds = Bounds(k, lower, upper);

    std::vector<std::vector<CoverInterval>> per_group(
        static_cast<size_t>(c_num));
    int row = 0;
    for (int c = 0; c < c_num; ++c) {
      const int cnt = static_cast<int>(rng.UniformInt(4));
      for (int i = 0; i < cnt; ++i) {
        double a = rng.Uniform();
        double b = rng.Uniform();
        if (a > b) std::swap(a, b);
        // Occasionally anchor at the borders to make "yes" likelier.
        if (rng.Bernoulli(0.3)) a = 0.0;
        if (rng.Bernoulli(0.3)) b = 1.0;
        per_group[static_cast<size_t>(c)].push_back({a, b, row++});
      }
    }

    auto dp = FairIntervalCoverDp::Create(bounds, 1 << 22);
    ASSERT_TRUE(dp.ok());
    std::vector<int> sol;
    const bool fast = dp->Decide(BuildGroups(per_group), 1e-9, &sol);
    const bool brute = BruteDecide(per_group, bounds);
    ASSERT_EQ(fast, brute) << "trial " << trial;
    fast ? ++yes : ++no;
  }
  // The sweep must exercise both outcomes to be meaningful.
  EXPECT_GT(yes, 20);
  EXPECT_GT(no, 20);
}

}  // namespace
}  // namespace fairhms
