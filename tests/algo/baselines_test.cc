#include "algo/baselines.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(123);
    data_ = std::make_unique<Dataset>(GenAntiCorrelated(400, 3, &rng));
    sky_ = ComputeSkyline(*data_);
    ASSERT_GE(sky_.size(), 20u);
  }

  std::unique_ptr<Dataset> data_;
  std::vector<int> sky_;
};

TEST_F(BaselinesTest, RdpGreedyReturnsKDistinctRows) {
  auto sol = RdpGreedy(*data_, sky_, 8);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 8u);
  std::vector<int> dedup = sol->rows;
  dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
  EXPECT_EQ(dedup.size(), 8u);
  EXPECT_EQ(sol->algorithm, "Greedy");
  EXPECT_GT(sol->mhr, 0.0);
}

TEST_F(BaselinesTest, RdpGreedyImprovesWithK) {
  auto s4 = RdpGreedy(*data_, sky_, 4);
  auto s12 = RdpGreedy(*data_, sky_, 12);
  ASSERT_TRUE(s4.ok() && s12.ok());
  EXPECT_GE(s12->mhr, s4->mhr - 1e-9);
}

TEST_F(BaselinesTest, RdpGreedyHandlesKBeyondPool) {
  const Dataset tiny = MakeDataset({{1, 0, 0}, {0, 1, 0}, {0, 0, 1}});
  auto sol = RdpGreedy(tiny, {0, 1, 2}, 10);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->rows.size(), 3u);
  EXPECT_NEAR(sol->mhr, 1.0, 1e-9);
}

TEST_F(BaselinesTest, RdpGreedyRejectsEmptyInput) {
  EXPECT_FALSE(RdpGreedy(*data_, {}, 3).ok());
  EXPECT_FALSE(RdpGreedy(*data_, sky_, 0).ok());
}

TEST_F(BaselinesTest, DmmReturnsReasonableSolution) {
  auto sol = Dmm(*data_, sky_, 8);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 8u);
  EXPECT_GT(sol->mhr, 0.3);
  EXPECT_EQ(sol->algorithm, "DMM");
}

TEST_F(BaselinesTest, DmmMemoryGuardTriggersInHighD) {
  Rng rng(7);
  const Dataset wide = GenIndependent(200, 9, &rng);
  const auto sky = ComputeSkyline(wide);
  DmmOptions opts;
  opts.memory_budget_bytes = 10'000'000;  // 10 MB: 6^8 dirs won't fit.
  EXPECT_EQ(Dmm(wide, sky, 10, opts).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(BaselinesTest, DmmThresholdMonotonicity) {
  // More budget (larger k) can only improve the achieved mhr.
  auto s5 = Dmm(*data_, sky_, 5);
  auto s15 = Dmm(*data_, sky_, 15);
  ASSERT_TRUE(s5.ok() && s15.ok());
  EXPECT_GE(s15->mhr, s5->mhr - 1e-9);
}

TEST_F(BaselinesTest, SphereRequiresKGreaterEqualD) {
  EXPECT_EQ(SphereAlgo(*data_, sky_, 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BaselinesTest, SphereIncludesDimensionExtremes) {
  auto sol = SphereAlgo(*data_, sky_, 8);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 8u);
  // Each dimension's max over the pool must be in the solution.
  for (int j = 0; j < 3; ++j) {
    int best = sky_.front();
    for (int r : sky_) {
      if (data_->at(static_cast<size_t>(r), j) >
          data_->at(static_cast<size_t>(best), j)) {
        best = r;
      }
    }
    EXPECT_NE(std::find(sol->rows.begin(), sol->rows.end(), best),
              sol->rows.end())
        << "extreme of dim " << j << " missing";
  }
}

TEST_F(BaselinesTest, HittingSetProducesSolution) {
  auto sol = HittingSet(*data_, sky_, 8);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 8u);
  EXPECT_GT(sol->mhr, 0.3);
  EXPECT_EQ(sol->algorithm, "HS");
}

TEST_F(BaselinesTest, HittingSetScalesWithoutMatrix) {
  // HS must handle dimensionalities where DMM refuses.
  Rng rng(11);
  const Dataset wide = GenIndependent(300, 9, &rng);
  const auto sky = ComputeSkyline(wide);
  DmmOptions dmm_opts;
  dmm_opts.memory_budget_bytes = 10'000'000;
  EXPECT_FALSE(Dmm(wide, sky, 10, dmm_opts).ok());
  auto hs = HittingSet(wide, sky, 10);
  ASSERT_TRUE(hs.ok()) << hs.status();
  EXPECT_EQ(hs->rows.size(), 10u);
}

TEST_F(BaselinesTest, QualityOrderingSanity) {
  // RDP-Greedy (LP-driven) should be competitive with Sphere on
  // anti-correlated data; all baselines must stay within [0, 1].
  auto greedy = RdpGreedy(*data_, sky_, 9);
  auto sphere = SphereAlgo(*data_, sky_, 9);
  auto dmm = Dmm(*data_, sky_, 9);
  auto hs = HittingSet(*data_, sky_, 9);
  for (const auto* sol :
       {&greedy, &sphere, &dmm, &hs}) {
    ASSERT_TRUE(sol->ok());
    EXPECT_GE((*sol)->mhr, 0.0);
    EXPECT_LE((*sol)->mhr, 1.0 + 1e-12);
  }
}

TEST_F(BaselinesTest, AllBaselinesDeterministic) {
  auto a1 = RdpGreedy(*data_, sky_, 6);
  auto a2 = RdpGreedy(*data_, sky_, 6);
  ASSERT_TRUE(a1.ok() && a2.ok());
  EXPECT_EQ(a1->rows, a2->rows);
  auto d1 = Dmm(*data_, sky_, 6);
  auto d2 = Dmm(*data_, sky_, 6);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d1->rows, d2->rows);
  auto h1 = HittingSet(*data_, sky_, 6);
  auto h2 = HittingSet(*data_, sky_, 6);
  ASSERT_TRUE(h1.ok() && h2.ok());
  EXPECT_EQ(h1->rows, h2->rows);
}

TEST_F(BaselinesTest, TwoDimensionalRun) {
  Rng rng(13);
  const Dataset data2 = GenAntiCorrelated(300, 2, &rng);
  const auto sky2 = ComputeSkyline(data2);
  for (int k : {3, 5}) {
    auto g = RdpGreedy(data2, sky2, k);
    ASSERT_TRUE(g.ok());
    auto d = Dmm(data2, sky2, k);
    ASSERT_TRUE(d.ok());
    auto h = HittingSet(data2, sky2, k);
    ASSERT_TRUE(h.ok());
    // 2D with a handful of points covers most of the envelope.
    EXPECT_GT(g->mhr, 0.7);
    EXPECT_GT(d->mhr, 0.7);
  }
}

}  // namespace
}  // namespace fairhms
