#include "algo/fair_greedy.h"

#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "common/random.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;
using testing::MakeGrouping;

TEST(FairGreedyTest, SolutionFairAndSizeK) {
  Rng rng(1);
  const Dataset data = GenAntiCorrelated(300, 3, &rng);
  const Grouping g = GroupBySumRank(data, 3);
  const GroupBounds bounds = GroupBounds::Proportional(9, g.Counts(), 0.2);
  auto sol = FairGreedy(data, g, bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 9u);
  EXPECT_EQ(CountViolations(sol->rows, g, bounds), 0);
  EXPECT_EQ(sol->algorithm, "F-Greedy");
  EXPECT_GT(sol->mhr, 0.0);
}

TEST(FairGreedyTest, MatchesRdpGreedyWhenUnconstrained) {
  // With C = 1 and loose bounds F-Greedy degenerates to RDP-Greedy's
  // selection rule; the solutions should have very similar quality.
  Rng rng(2);
  const Dataset data = GenAntiCorrelated(300, 3, &rng);
  const auto sky = ComputeSkyline(data);
  const Grouping g = SingleGroup(data.size());
  auto bounds = GroupBounds::Explicit(8, {0}, {8});
  ASSERT_TRUE(bounds.ok());
  auto fair = FairGreedy(data, g, *bounds);
  auto rdp = RdpGreedy(data, sky, 8);
  ASSERT_TRUE(fair.ok() && rdp.ok());
  EXPECT_NEAR(fair->mhr, rdp->mhr, 0.05);
}

TEST(FairGreedyTest, RespectsTightPerGroupBounds) {
  const Dataset data = MakeDataset(
      {{1, 0}, {0.95, 0.1}, {0, 1}, {0.1, 0.95}, {0.6, 0.6}, {0.5, 0.5}});
  const Grouping g = MakeGrouping({0, 0, 1, 1, 2, 2}, 3);
  auto bounds = GroupBounds::Explicit(3, {1, 1, 1}, {1, 1, 1});
  ASSERT_TRUE(bounds.ok());
  auto sol = FairGreedy(data, g, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  const auto counts = SolutionGroupCounts(sol->rows, g);
  EXPECT_EQ(counts, (std::vector<int>{1, 1, 1}));
}

TEST(FairGreedyTest, ZeroRegretEarlyStopStillFillsK) {
  // Two points suffice for zero regret; k = 4 must still be delivered.
  const Dataset data =
      MakeDataset({{1, 0}, {0, 1}, {0.3, 0.3}, {0.2, 0.2}, {0.1, 0.1}});
  const Grouping g = SingleGroup(5);
  auto bounds = GroupBounds::Explicit(4, {0}, {5});
  ASSERT_TRUE(bounds.ok());
  auto sol = FairGreedy(data, g, *bounds);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->rows.size(), 4u);
  EXPECT_NEAR(sol->mhr, 1.0, 1e-9);
}

TEST(FairGreedyTest, DeterministicResults) {
  Rng rng(3);
  const Dataset data = GenIndependent(150, 4, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.1);
  auto s1 = FairGreedy(data, g, bounds);
  auto s2 = FairGreedy(data, g, bounds);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(s1->rows, s2->rows);
}

TEST(FairGreedyTest, InfeasibleBoundsRejected) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}});
  const Grouping g = MakeGrouping({0, 0}, 1);
  auto bounds = GroupBounds::Explicit(3, {3}, {3});
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(FairGreedy(data, g, *bounds).status().code(),
            StatusCode::kInfeasible);
}

}  // namespace
}  // namespace fairhms
