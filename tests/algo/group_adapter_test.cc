#include "algo/group_adapter.h"

#include <gtest/gtest.h>

#include "algo/baselines.h"
#include "common/random.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;
using testing::MakeGrouping;

BaseSolver GreedySolver() {
  return [](const Dataset& data, const std::vector<int>& rows, int k) {
    return RdpGreedy(data, rows, k);
  };
}

TEST(GroupAdapterTest, UnionHasSizeKAndZeroViolations) {
  Rng rng(1);
  const Dataset data = GenAntiCorrelated(400, 3, &rng);
  const Grouping g = GroupBySumRank(data, 3);
  const GroupBounds bounds = GroupBounds::Proportional(9, g.Counts(), 0.2);
  auto sol = GroupAdapt(GreedySolver(), "Greedy", data, g, bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 9u);
  EXPECT_EQ(CountViolations(sol->rows, g, bounds), 0);
  EXPECT_EQ(sol->algorithm, "G-Greedy");
}

TEST(GroupAdapterTest, QuotasProportionalToGroupSizes) {
  Rng rng(2);
  // 80/20 split; with k = 10 the large group should get the bigger share.
  Dataset data(2);
  data.AddCategoricalColumn("g", {"big", "small"});
  for (int i = 0; i < 400; ++i) {
    data.AddRow({rng.Uniform(), rng.Uniform()}, {0});
  }
  for (int i = 0; i < 100; ++i) {
    data.AddRow({rng.Uniform(), rng.Uniform()}, {1});
  }
  auto g = GroupByCategorical(data, "g");
  ASSERT_TRUE(g.ok());
  const GroupBounds bounds = GroupBounds::Proportional(10, g->Counts(), 0.1);
  auto sol = GroupAdapt(GreedySolver(), "Greedy", data, *g, bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  const auto counts = SolutionGroupCounts(sol->rows, *g);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_EQ(counts[0] + counts[1], 10);
}

TEST(GroupAdapterTest, PropagatesBaseFailure) {
  // Sphere needs k_c >= d; with d = 5 and per-group quotas of ~2, G-Sphere
  // must fail — reproducing the missing bars in the paper's plots.
  Rng rng(3);
  const Dataset data = GenIndependent(500, 5, &rng);
  const Grouping g = GroupBySumRank(data, 4);
  const GroupBounds bounds = GroupBounds::Proportional(8, g.Counts(), 0.1);
  BaseSolver sphere = [](const Dataset& d, const std::vector<int>& rows,
                         int k) { return SphereAlgo(d, rows, k); };
  auto sol = GroupAdapt(sphere, "Sphere", data, g, bounds);
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kInvalidArgument);
}

TEST(GroupAdapterTest, SmallGroupSkylineWidenedToMembers) {
  // Group 1 has 3 identical dominated points: its skyline has 1 entry but
  // the quota may require more; the adapter must widen to all members.
  const Dataset data = MakeDataset({{1.0, 0.0},
                                    {0.0, 1.0},
                                    {0.9, 0.9},
                                    {0.5, 0.5},
                                    {0.5, 0.5},
                                    {0.5, 0.4}});
  const Grouping g = MakeGrouping({0, 0, 0, 1, 1, 1}, 2);
  auto bounds = GroupBounds::Explicit(4, {2, 2}, {2, 2});
  ASSERT_TRUE(bounds.ok());
  auto sol = GroupAdapt(GreedySolver(), "Greedy", data, g, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 4u);
  EXPECT_EQ(CountViolations(sol->rows, g, *bounds), 0);
}

TEST(GroupAdapterTest, MismatchedInputsRejected) {
  const Dataset data = MakeDataset({{1, 0}});
  const Grouping g = MakeGrouping({0, 0}, 1);
  auto bounds = GroupBounds::Explicit(1, {1}, {1});
  ASSERT_TRUE(bounds.ok());
  EXPECT_FALSE(GroupAdapt(GreedySolver(), "Greedy", data, g, *bounds).ok());
}

}  // namespace
}  // namespace fairhms
