#include "algo/intcov.h"

#include <numeric>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::ForEachSubset;
using testing::MakeDataset;
using testing::MakeGrouping;

/// Brute-force FairHMS optimum via subset enumeration + exact 2D mhr.
double BruteForceOpt(const Dataset& data, const Grouping& g,
                     const GroupBounds& bounds) {
  std::vector<int> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  const auto sky = ComputeSkyline(data);
  double best = -1.0;
  ForEachSubset(all, bounds.k, [&](const std::vector<int>& subset) {
    if (CountViolations(subset, g, bounds) != 0) return;
    best = std::max(best, MhrExact2D(data, sky, subset));
  });
  return best;
}

TEST(IntCovTest, RejectsNon2D) {
  Rng rng(1);
  const Dataset data = GenIndependent(20, 3, &rng);
  const Grouping g = SingleGroup(20);
  auto bounds = GroupBounds::Explicit(2, {2}, {2});
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(IntCov(data, g, *bounds).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IntCovTest, TrivialInstanceSelectsHull) {
  // With k = 2 and one group, picking both extremes is optimal.
  const Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.2, 0.2}});
  const Grouping g = SingleGroup(3);
  auto bounds = GroupBounds::Explicit(2, {0}, {2});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(data, g, *bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows, (std::vector<int>{0, 1}));
  EXPECT_NEAR(sol->mhr, 1.0, 1e-9);
}

TEST(IntCovTest, FairnessConstraintChangesSolution) {
  // Group 0 holds both extremes; forcing one from each group drops mhr.
  // ((0.5, 0.45) lies strictly below the chord between the extremes, so the
  // unconstrained optimum {p0, p1} has mhr exactly 1.)
  const Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.5, 0.45}, {0.4, 0.4}});
  const Grouping g = MakeGrouping({0, 0, 1, 1}, 2);
  auto unfair = GroupBounds::Explicit(2, {0, 0}, {2, 2});
  auto fair = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(unfair.ok() && fair.ok());
  auto su = IntCov(data, g, *unfair);
  auto sf = IntCov(data, g, *fair);
  ASSERT_TRUE(su.ok() && sf.ok());
  EXPECT_NEAR(su->mhr, 1.0, 1e-9);
  EXPECT_LT(sf->mhr, su->mhr);
  EXPECT_EQ(CountViolations(sf->rows, g, *fair), 0);
  EXPECT_EQ(sf->rows.size(), 2u);
}

TEST(IntCovTest, SolutionAlwaysFairAndSizeK) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Dataset data = GenIndependent(60, 2, &rng);
    const int c_num = 2 + static_cast<int>(rng.UniformInt(2));
    const Grouping g = GroupBySumRank(data, c_num);
    const int k = c_num + 1 + static_cast<int>(rng.UniformInt(3));
    const GroupBounds bounds = GroupBounds::Proportional(k, g.Counts(), 0.3);
    auto sol = IntCov(data, g, bounds);
    ASSERT_TRUE(sol.ok()) << sol.status();
    EXPECT_EQ(static_cast<int>(sol->rows.size()), k);
    EXPECT_EQ(CountViolations(sol->rows, g, bounds), 0);
  }
}

// The central correctness test: IntCov is exact. Compare against subset
// enumeration on random small instances (paper Thm 3.1).
TEST(IntCovTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 8 + static_cast<int>(rng.UniformInt(5));
    const Dataset data = GenIndependent(static_cast<size_t>(n), 2, &rng);
    const int c_num = 1 + static_cast<int>(rng.UniformInt(3));
    const Grouping g = GroupBySumRank(data, c_num);
    const int k = std::min(n, c_num + static_cast<int>(rng.UniformInt(3)));
    if (k < c_num) continue;
    std::vector<int> lower(static_cast<size_t>(c_num), 0);
    std::vector<int> upper(static_cast<size_t>(c_num), k);
    if (rng.Bernoulli(0.6)) {
      // Tighter bounds: one per group at least, cap at 2.
      for (int c = 0; c < c_num; ++c) {
        lower[static_cast<size_t>(c)] = 1;
        upper[static_cast<size_t>(c)] = 2;
      }
      if (c_num * 1 > k || c_num * 2 < k) continue;
    }
    auto bounds = GroupBounds::Explicit(k, lower, upper);
    if (!bounds.ok()) continue;
    if (!bounds->Validate(g.Counts()).ok()) continue;

    auto sol = IntCov(data, g, *bounds);
    ASSERT_TRUE(sol.ok()) << sol.status() << " trial " << trial;
    const double brute = BruteForceOpt(data, g, *bounds);
    ASSERT_GE(brute, 0.0);
    EXPECT_NEAR(sol->mhr, brute, 1e-7)
        << "trial " << trial << " n=" << n << " k=" << k << " C=" << c_num;
  }
}

TEST(IntCovTest, AntiCorrelatedMediumInstance) {
  Rng rng(11);
  const Dataset data = GenAntiCorrelated(500, 2, &rng);
  const Grouping g = GroupBySumRank(data, 3);
  const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.1);
  auto sol = IntCov(data, g, bounds);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_EQ(sol->rows.size(), 6u);
  EXPECT_EQ(CountViolations(sol->rows, g, bounds), 0);
  EXPECT_GT(sol->mhr, 0.8);  // Sanity: 6 points cover a 2D envelope well.
  // And IntCov beats (or ties) a trivially fair random selection.
  std::vector<int> naive;
  const auto members = g.Members();
  for (int c = 0; c < 3; ++c) {
    naive.push_back(members[static_cast<size_t>(c)][0]);
    naive.push_back(members[static_cast<size_t>(c)][1]);
  }
  const auto sky = ComputeSkyline(data);
  EXPECT_GE(sol->mhr, MhrExact2D(data, sky, naive) - 1e-9);
}

TEST(IntCovTest, StateSpaceGuard) {
  Rng rng(13);
  const Dataset data = GenIndependent(100, 2, &rng);
  const Grouping g = GroupBySumRank(data, 10);
  const GroupBounds bounds = GroupBounds::Proportional(30, g.Counts(), 0.5);
  IntCovOptions opts;
  opts.max_states = 1000;  // Tiny budget -> must refuse, not hang.
  EXPECT_EQ(IntCov(data, g, bounds, opts).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(IntCovTest, ContinuousFallbackMatchesExactPath) {
  Rng rng(17);
  const Dataset data = GenIndependent(40, 2, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  auto bounds = GroupBounds::Explicit(4, {1, 1}, {3, 3});
  ASSERT_TRUE(bounds.ok());
  auto exact = IntCov(data, g, *bounds);
  IntCovOptions opts;
  opts.max_pair_candidates = 0;  // Force bisection fallback.
  auto approx = IntCov(data, g, *bounds, opts);
  ASSERT_TRUE(exact.ok() && approx.ok());
  EXPECT_NEAR(exact->mhr, approx->mhr, 1e-6);
}

TEST(IntCovTest, KEqualsOneSelectsBestSinglePoint) {
  Rng rng(19);
  const Dataset data = GenIndependent(15, 2, &rng);
  const Grouping g = SingleGroup(15);
  auto bounds = GroupBounds::Explicit(1, {1}, {1});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(data, g, *bounds);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->rows.size(), 1u);
  // Exhaustive single-point check.
  const auto sky = ComputeSkyline(data);
  double best = 0;
  for (size_t i = 0; i < 15; ++i) {
    best = std::max(best, MhrExact2D(data, sky, {static_cast<int>(i)}));
  }
  EXPECT_NEAR(sol->mhr, best, 1e-9);
}

TEST(IntCovTest, ElapsedTimeRecorded) {
  Rng rng(23);
  const Dataset data = GenIndependent(30, 2, &rng);
  const Grouping g = SingleGroup(30);
  auto bounds = GroupBounds::Explicit(3, {0}, {3});
  ASSERT_TRUE(bounds.ok());
  auto sol = IntCov(data, g, *bounds);
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(sol->elapsed_ms, 0.0);
  EXPECT_EQ(sol->algorithm, "IntCov");
}

}  // namespace
}  // namespace fairhms
