#include "algo/bigreedy.h"

#include <numeric>

#include <gtest/gtest.h>

#include "algo/intcov.h"
#include "common/random.h"
#include "core/exact_evaluator.h"
#include "data/generators.h"
#include "skyline/skyline.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;
using testing::MakeGrouping;

TEST(BiGreedyTest, SolutionIsFairAndSizeK) {
  Rng rng(1);
  for (int d : {2, 3, 5}) {
    const Dataset data = GenIndependent(300, d, &rng);
    const Grouping g = GroupBySumRank(data, 3);
    const GroupBounds bounds = GroupBounds::Proportional(9, g.Counts(), 0.2);
    auto sol = BiGreedy(data, g, bounds);
    ASSERT_TRUE(sol.ok()) << sol.status();
    EXPECT_EQ(sol->rows.size(), 9u) << "d=" << d;
    EXPECT_EQ(CountViolations(sol->rows, g, bounds), 0) << "d=" << d;
  }
}

TEST(BiGreedyTest, DeterministicGivenSeed) {
  Rng rng(2);
  const Dataset data = GenAntiCorrelated(400, 3, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  const GroupBounds bounds = GroupBounds::Proportional(8, g.Counts(), 0.1);
  BiGreedyOptions opts;
  opts.seed = 99;
  auto s1 = BiGreedy(data, g, bounds, opts);
  auto s2 = BiGreedy(data, g, bounds, opts);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(s1->rows, s2->rows);
}

TEST(BiGreedyTest, NearOptimalOn2DInstances) {
  // Compare against the exact IntCov optimum: BiGreedy should be within the
  // combined net + eps error budget on easy 2D instances.
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Dataset data = GenIndependent(150, 2, &rng);
    const Grouping g = GroupBySumRank(data, 2);
    const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.2);
    auto exact = IntCov(data, g, bounds);
    BiGreedyOptions opts;
    opts.net_size = 400;
    auto approx = BiGreedy(data, g, bounds, opts);
    ASSERT_TRUE(exact.ok() && approx.ok());
    const auto sky = ComputeSkyline(data);
    const double approx_mhr = MhrExact2D(data, sky, approx->rows);
    EXPECT_GE(approx_mhr, exact->mhr - 0.12) << "trial " << trial;
    EXPECT_LE(approx_mhr, exact->mhr + 1e-9) << "trial " << trial;
  }
}

TEST(BiGreedyTest, LinearAndBinaryTauSearchComparable) {
  Rng rng(4);
  const Dataset data = GenAntiCorrelated(200, 3, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.2);
  BiGreedyOptions binary;
  binary.net_size = 200;
  BiGreedyOptions linear = binary;
  linear.tau_search = TauSearch::kLinear;
  BiGreedyRunInfo bi, li;
  auto sb = BiGreedy(data, g, bounds, binary, &bi);
  auto sl = BiGreedy(data, g, bounds, linear, &li);
  ASSERT_TRUE(sb.ok() && sl.ok());
  const auto sky = ComputeSkyline(data);
  const double mb = MhrExactLp(data, sky, sb->rows);
  const double ml = MhrExactLp(data, sky, sl->rows);
  EXPECT_NEAR(mb, ml, 0.05);
  // Binary search does far fewer MRGreedy calls.
  EXPECT_LT(bi.mrgreedy_calls, li.mrgreedy_calls / 4);
}

TEST(BiGreedyTest, RunInfoPopulated) {
  Rng rng(5);
  const Dataset data = GenIndependent(100, 3, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.2);
  BiGreedyRunInfo info;
  auto sol = BiGreedy(data, g, bounds, {}, &info);
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(info.tau, 0.0);
  EXPECT_LE(info.tau, 1.0);
  EXPECT_EQ(info.net_size, 10u * 6u * 3u);  // 10 * k * d default.
  EXPECT_GE(info.mrgreedy_calls, 1);
}

TEST(BiGreedyTest, NetSizeFromDelta) {
  Rng rng(6);
  const Dataset data = GenIndependent(50, 2, &rng);
  const Grouping g = SingleGroup(50);
  auto bounds = GroupBounds::Explicit(4, {0}, {4});
  ASSERT_TRUE(bounds.ok());
  BiGreedyOptions opts;
  opts.delta = 0.3;
  BiGreedyRunInfo info;
  auto sol = BiGreedy(data, g, *bounds, opts, &info);
  ASSERT_TRUE(sol.ok());
  // Lemma 4.1 net: delta' = delta / (d(2-delta)).
  const double net_delta = 0.3 / (2 * (2 - 0.3));
  EXPECT_EQ(info.net_size, UtilityNet::DeltaToSampleSize(net_delta, 2));
}

TEST(BiGreedyTest, BicriteriaUnionSatisfiesScaledBounds) {
  // Lemma 4.5 object: the union of gamma rounds with gamma-scaled bounds.
  Rng rng(7);
  const Dataset data = GenIndependent(200, 3, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.2);
  BiGreedyOptions opts;
  opts.strict_feasible = false;
  opts.net_size = 100;
  BiGreedyRunInfo info;
  auto sol = BiGreedy(data, g, bounds, opts, &info);
  ASSERT_TRUE(sol.ok());
  const int gamma = info.rounds_used;
  EXPECT_GE(gamma, 1);
  EXPECT_LE(static_cast<int>(sol->rows.size()), gamma * bounds.k);
  const auto counts = SolutionGroupCounts(sol->rows, g);
  for (size_t c = 0; c < counts.size(); ++c) {
    EXPECT_LE(counts[c], gamma * bounds.upper[c]);
  }
}

TEST(BiGreedyTest, UnionNetMhrCertifiedByTau) {
  // When MRGreedy certifies tau, the union's net mhr is >= (1 - eps) tau
  // (Lemma 4.5 conclusion).
  Rng rng(8);
  const Dataset data = GenAntiCorrelated(150, 3, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.2);
  BiGreedyOptions opts;
  opts.strict_feasible = false;
  opts.net_size = 150;
  opts.seed = 5;
  BiGreedyRunInfo info;
  auto sol = BiGreedy(data, g, bounds, opts, &info);
  ASSERT_TRUE(sol.ok());
  if (info.tau > 0.0) {
    // Re-evaluate on the same net.
    Rng net_rng(opts.seed);
    const UtilityNet net = UtilityNet::SampleRandom(3, 150, &net_rng);
    const auto sky = ComputeSkyline(data);
    const NetEvaluator eval(&data, &net, sky);
    EXPECT_GE(eval.Mhr(sol->rows), (1.0 - opts.eps) * info.tau - 1e-9);
  }
}

TEST(BiGreedyPlusTest, FeasibleAndComparableToBiGreedy) {
  Rng rng(9);
  const Dataset data = GenAntiCorrelated(500, 4, &rng);
  const Grouping g = GroupBySumRank(data, 3);
  const GroupBounds bounds = GroupBounds::Proportional(8, g.Counts(), 0.2);
  auto big = BiGreedy(data, g, bounds);
  auto plus = BiGreedyPlus(data, g, bounds);
  ASSERT_TRUE(big.ok() && plus.ok());
  EXPECT_EQ(plus->rows.size(), 8u);
  EXPECT_EQ(CountViolations(plus->rows, g, bounds), 0);
  const auto sky = ComputeSkyline(data);
  const double m_big = MhrExactLp(data, sky, big->rows);
  const double m_plus = MhrExactLp(data, sky, plus->rows);
  // Paper: BiGreedy+ close to BiGreedy, small loss allowed.
  EXPECT_GE(m_plus, m_big - 0.1);
}

TEST(BiGreedyPlusTest, StopsAtMaxNetSize) {
  Rng rng(10);
  const Dataset data = GenIndependent(100, 3, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.2);
  BiGreedyPlusOptions opts;
  opts.max_net_size = 64;
  opts.lambda = -1.0;  // Never converge early: must stop at the cap.
  BiGreedyRunInfo info;
  auto sol = BiGreedyPlus(data, g, bounds, opts, &info);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(info.net_size, 64u);
  EXPECT_EQ(sol->algorithm, "BiGreedy+");
}

TEST(BiGreedyTest, LazyAndPlainGreedyEquivalent) {
  // Lazy evaluation is an exact accelerator of plain greedy (submodularity
  // makes stale upper bounds sound); the selections must match.
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Dataset data = GenAntiCorrelated(150, 3, &rng);
    const Grouping g = GroupBySumRank(data, 2);
    const GroupBounds bounds = GroupBounds::Proportional(6, g.Counts(), 0.2);
    BiGreedyOptions lazy_opts;
    lazy_opts.seed = 7 + static_cast<uint64_t>(trial);
    lazy_opts.net_size = 120;
    BiGreedyOptions plain_opts = lazy_opts;
    plain_opts.lazy = false;
    auto lazy_sol = BiGreedy(data, g, bounds, lazy_opts);
    auto plain_sol = BiGreedy(data, g, bounds, plain_opts);
    ASSERT_TRUE(lazy_sol.ok() && plain_sol.ok());
    EXPECT_EQ(lazy_sol->rows, plain_sol->rows) << "trial " << trial;
  }
}

TEST(BiGreedyTest, SingleGroupEqualsVanillaHms) {
  // C = 1 with l = 0, h = k reduces FairHMS to HMS; result must be size k.
  Rng rng(11);
  const Dataset data = GenAntiCorrelated(300, 3, &rng);
  const Grouping g = SingleGroup(300);
  auto bounds = GroupBounds::Explicit(10, {0}, {10});
  ASSERT_TRUE(bounds.ok());
  auto sol = BiGreedy(data, g, *bounds);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->rows.size(), 10u);
}

TEST(BiGreedyTest, TinyPoolStillFeasible) {
  // Pool smaller than the dataset: exactly one choice per group.
  const Dataset data = MakeDataset({{1, 0}, {0, 1}});
  const Grouping g = MakeGrouping({0, 1}, 2);
  auto bounds = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(bounds.ok());
  auto sol = BiGreedy(data, g, *bounds);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->rows, (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace fairhms
