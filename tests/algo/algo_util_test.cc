#include "algo/algo_util.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generators.h"
#include "testing/test_util.h"

namespace fairhms {
namespace {

using testing::MakeDataset;
using testing::MakeGrouping;

TEST(PrepareProblemTest, FillsDefaults) {
  Rng rng(1);
  const Dataset data = GenIndependent(100, 2, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  auto bounds = GroupBounds::Explicit(4, {1, 1}, {3, 3});
  ASSERT_TRUE(bounds.ok());
  auto input = PrepareProblem(data, g, *bounds);
  ASSERT_TRUE(input.ok()) << input.status();
  EXPECT_FALSE(input->pool.empty());
  EXPECT_FALSE(input->db_rows.empty());
  EXPECT_EQ(input->pool_by_group.size(), 2u);
  // Each pool row belongs to its listed group.
  for (int c = 0; c < 2; ++c) {
    for (int r : input->pool_by_group[static_cast<size_t>(c)]) {
      EXPECT_EQ(g.group_of[static_cast<size_t>(r)], c);
    }
  }
}

TEST(PrepareProblemTest, RejectsMismatchedGrouping) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}});
  const Grouping g = MakeGrouping({0}, 1);  // Wrong size.
  auto bounds = GroupBounds::Explicit(1, {1}, {1});
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(PrepareProblem(data, g, *bounds).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PrepareProblemTest, RejectsGroupCountMismatch) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}});
  const Grouping g = MakeGrouping({0, 1}, 2);
  auto bounds = GroupBounds::Explicit(1, {1}, {1});  // 1 group only.
  ASSERT_TRUE(bounds.ok());
  EXPECT_EQ(PrepareProblem(data, g, *bounds).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PrepareProblemTest, RejectsInfeasibleBounds) {
  const Dataset data = MakeDataset({{1, 0}, {0, 1}, {0.5, 0.8}});
  const Grouping g = MakeGrouping({0, 0, 1}, 2);
  auto bounds = GroupBounds::Explicit(3, {2, 2}, {3, 3});  // sum(l) > k.
  EXPECT_FALSE(bounds.ok());
  auto bounds2 = GroupBounds::Explicit(3, {1, 2}, {3, 3});
  ASSERT_TRUE(bounds2.ok());
  // Group 1 has only one member but lower bound 2.
  EXPECT_EQ(PrepareProblem(data, g, *bounds2).status().code(),
            StatusCode::kInfeasible);
}

TEST(DedupRowsTest, PreservesFirstOccurrence) {
  std::vector<int> rows = {3, 1, 3, 2, 1};
  DedupRows(&rows);
  EXPECT_EQ(rows, (std::vector<int>{3, 1, 2}));
}

TEST(PadSolutionTest, PadsToExactlyK) {
  Rng rng(2);
  const Dataset data = GenIndependent(50, 2, &rng);
  const Grouping g = GroupBySumRank(data, 2);
  auto bounds = GroupBounds::Explicit(6, {2, 2}, {4, 4});
  ASSERT_TRUE(bounds.ok());
  auto input = PrepareProblem(data, g, *bounds);
  ASSERT_TRUE(input.ok());
  std::vector<int> sol = {input->pool.front()};
  ASSERT_TRUE(PadSolution(*input, &sol).ok());
  EXPECT_EQ(sol.size(), 6u);
  EXPECT_EQ(CountViolations(sol, g, *bounds), 0);
}

TEST(PadSolutionTest, AlreadyCompleteSolutionUnchanged) {
  const Dataset data =
      MakeDataset({{1, 0}, {0.9, 0.2}, {0, 1}, {0.2, 0.9}});
  const Grouping g = MakeGrouping({0, 0, 1, 1}, 2);
  auto bounds = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(bounds.ok());
  auto input = PrepareProblem(data, g, *bounds);
  ASSERT_TRUE(input.ok());
  std::vector<int> sol = {0, 2};
  ASSERT_TRUE(PadSolution(*input, &sol).ok());
  EXPECT_EQ(sol, (std::vector<int>{0, 2}));
}

TEST(PadSolutionTest, RemovesDuplicates) {
  const Dataset data =
      MakeDataset({{1, 0}, {0.9, 0.2}, {0, 1}, {0.2, 0.9}});
  const Grouping g = MakeGrouping({0, 0, 1, 1}, 2);
  auto bounds = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(bounds.ok());
  auto input = PrepareProblem(data, g, *bounds);
  ASSERT_TRUE(input.ok());
  std::vector<int> sol = {0, 0, 0};
  ASSERT_TRUE(PadSolution(*input, &sol).ok());
  EXPECT_EQ(sol.size(), 2u);
  EXPECT_EQ(CountViolations(sol, g, *bounds), 0);
}

TEST(PadSolutionTest, DetectsOverfullGroup) {
  const Dataset data =
      MakeDataset({{1, 0}, {0.9, 0.2}, {0, 1}, {0.2, 0.9}});
  const Grouping g = MakeGrouping({0, 0, 1, 1}, 2);
  auto bounds = GroupBounds::Explicit(2, {1, 1}, {1, 1});
  ASSERT_TRUE(bounds.ok());
  auto input = PrepareProblem(data, g, *bounds);
  ASSERT_TRUE(input.ok());
  std::vector<int> sol = {0, 1};  // Two from group 0 but h_0 = 1.
  EXPECT_EQ(PadSolution(*input, &sol).code(), StatusCode::kInternal);
}

TEST(PadSolutionTest, FillsLowerBoundsFirst) {
  // Group 1 has lower bound 2; starting from a group-0 point, padding must
  // bring group 1 up to 2.
  const Dataset data = MakeDataset(
      {{1, 0}, {0.9, 0.2}, {0, 1}, {0.2, 0.9}, {0.5, 0.5}, {0.6, 0.4}});
  const Grouping g = MakeGrouping({0, 0, 1, 1, 1, 0}, 2);
  auto bounds = GroupBounds::Explicit(3, {1, 2}, {1, 2});
  ASSERT_TRUE(bounds.ok());
  auto input = PrepareProblem(data, g, *bounds);
  ASSERT_TRUE(input.ok());
  std::vector<int> sol = {0};
  ASSERT_TRUE(PadSolution(*input, &sol).ok());
  EXPECT_EQ(sol.size(), 3u);
  const auto counts = SolutionGroupCounts(sol, g);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
}

}  // namespace
}  // namespace fairhms
