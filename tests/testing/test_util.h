// Shared helpers for the FairHMS test suite: tiny dataset builders,
// brute-force reference implementations, and the paper's Table 1 example.

#ifndef FAIRHMS_TESTS_TESTING_TEST_UTIL_H_
#define FAIRHMS_TESTS_TESTING_TEST_UTIL_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "data/grouping.h"
#include "geom/dominance.h"
#include "geom/vec.h"

namespace fairhms {
namespace testing {

/// Builds a dataset from a point list.
inline Dataset MakeDataset(const std::vector<std::vector<double>>& pts) {
  Dataset data(static_cast<int>(pts.front().size()));
  for (const auto& p : pts) data.AddPoint(p);
  return data;
}

/// Builds a grouping from explicit assignments.
inline Grouping MakeGrouping(std::vector<int> assign, int num_groups) {
  Grouping g;
  g.group_of = std::move(assign);
  g.num_groups = num_groups;
  for (int c = 0; c < num_groups; ++c) g.names.push_back("g" + std::to_string(c));
  return g;
}

/// O(n^2) reference skyline.
inline std::vector<int> BruteForceSkyline(const Dataset& data,
                                          const std::vector<int>& rows) {
  std::vector<int> sky;
  const size_t d = static_cast<size_t>(data.dim());
  for (int i : rows) {
    bool dominated = false;
    for (int j : rows) {
      if (i != j && Dominates(data.point(static_cast<size_t>(j)),
                              data.point(static_cast<size_t>(i)), d)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) sky.push_back(i);
  }
  return sky;
}

/// Dense direction-grid reference mhr for d = 2 (lower bound with grid
/// resolution ~1/steps; adequate to cross-check exact evaluators).
inline double GridMhr2D(const Dataset& data, const std::vector<int>& subset,
                        int steps = 20000) {
  double mhr = 1.0;
  for (int t = 0; t <= steps; ++t) {
    const double lambda = static_cast<double>(t) / steps;
    double best_all = 0.0;
    for (size_t i = 0; i < data.size(); ++i) {
      best_all = std::max(best_all,
                          lambda * data.at(i, 0) + (1 - lambda) * data.at(i, 1));
    }
    if (best_all <= 1e-15) continue;
    double best_s = 0.0;
    for (int r : subset) {
      best_s = std::max(best_s, lambda * data.at(static_cast<size_t>(r), 0) +
                                    (1 - lambda) * data.at(static_cast<size_t>(r), 1));
    }
    mhr = std::min(mhr, best_s / best_all);
  }
  return mhr;
}

/// Visits every size-k subset of rows; `visit(subset)`.
inline void ForEachSubset(const std::vector<int>& rows, int k,
                          const std::function<void(const std::vector<int>&)>& visit) {
  std::vector<int> idx(static_cast<size_t>(k));
  std::function<void(int, int)> rec = [&](int start, int depth) {
    if (depth == k) {
      std::vector<int> subset;
      subset.reserve(static_cast<size_t>(k));
      for (int i = 0; i < k; ++i) subset.push_back(rows[static_cast<size_t>(idx[static_cast<size_t>(i)])]);
      visit(subset);
      return;
    }
    for (int i = start; i <= static_cast<int>(rows.size()) - (k - depth); ++i) {
      idx[static_cast<size_t>(depth)] = i;
      rec(i + 1, depth + 1);
    }
  };
  if (k >= 1 && k <= static_cast<int>(rows.size())) rec(0, 0);
}

/// The running example of the paper (Table 1): eight LSAC applicants with
/// (LSAT, GPA), gender and race, normalized by attribute maxima (the
/// normalization that reproduces the paper's happiness values exactly).
inline Dataset MakeLsacExample() {
  Dataset data(std::vector<std::string>{"lsat", "gpa"});
  data.AddCategoricalColumn("gender", {"Female", "Male"});
  data.AddCategoricalColumn("race", {"Black", "White", "Hispanic", "Asian"});
  // id, gender, race, lsat, gpa per Table 1 (a1 .. a8).
  const double lsat[] = {164, 163, 165, 160, 170, 161, 153, 156};
  const double gpa[] = {3.31, 3.55, 3.09, 3.83, 2.79, 3.69, 3.89, 3.87};
  const int male[] = {0, 1, 0, 1, 1, 0, 1, 0};
  const int race[] = {0, 0, 1, 1, 2, 2, 3, 3};
  for (int i = 0; i < 8; ++i) {
    data.AddRow({lsat[i], gpa[i]}, {male[i], race[i]});
  }
  return data.ScaledByMax();
}

}  // namespace testing
}  // namespace fairhms

#endif  // FAIRHMS_TESTS_TESTING_TEST_UTIL_H_
