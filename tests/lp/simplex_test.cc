#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace fairhms {
namespace {

TEST(SimplexTest, SimpleMaximization) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6;  optimum at (4, 0) = 12.
  LpProblem lp(2);
  lp.SetObjective({3, 2});
  lp.AddConstraint({1, 1}, RelOp::kLe, 4);
  lp.AddConstraint({1, 3}, RelOp::kLe, 6);
  const LpResult res = lp.Solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 12.0, 1e-9);
  EXPECT_NEAR(res.x[0], 4.0, 1e-9);
  EXPECT_NEAR(res.x[1], 0.0, 1e-9);
}

TEST(SimplexTest, InteriorOptimum) {
  // max x + y  s.t. 2x + y <= 4, x + 2y <= 4; optimum (4/3, 4/3) = 8/3.
  LpProblem lp(2);
  lp.SetObjective({1, 1});
  lp.AddConstraint({2, 1}, RelOp::kLe, 4);
  lp.AddConstraint({1, 2}, RelOp::kLe, 4);
  const LpResult res = lp.Solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 8.0 / 3.0, 1e-9);
  EXPECT_NEAR(res.x[0], 4.0 / 3.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x  s.t. x + y = 1; optimum x = 1.
  LpProblem lp(2);
  lp.SetObjective({1, 0});
  lp.AddConstraint({1, 1}, RelOp::kEq, 1);
  const LpResult res = lp.Solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 1.0, 1e-9);
  EXPECT_NEAR(res.x[1], 0.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // min x + y (max -x - y) s.t. x + y >= 2 -> optimum -2.
  LpProblem lp(2);
  lp.SetObjective({-1, -1});
  lp.AddConstraint({1, 1}, RelOp::kGe, 2);
  const LpResult res = lp.Solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, -2.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  LpProblem lp(1);
  lp.SetObjective({1});
  lp.AddConstraint({1}, RelOp::kLe, 1);
  lp.AddConstraint({1}, RelOp::kGe, 2);
  EXPECT_EQ(lp.Solve().status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualities) {
  LpProblem lp(2);
  lp.SetObjective({1, 0});
  lp.AddConstraint({1, 1}, RelOp::kEq, 1);
  lp.AddConstraint({1, 1}, RelOp::kEq, 2);
  EXPECT_EQ(lp.Solve().status, LpStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  LpProblem lp(2);
  lp.SetObjective({1, 0});
  lp.AddConstraint({0, 1}, RelOp::kLe, 1);  // x unconstrained above.
  EXPECT_EQ(lp.Solve().status, LpStatus::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // max -x s.t. -x <= -2 (i.e. x >= 2): optimum x = 2, objective -2.
  LpProblem lp(1);
  lp.SetObjective({-1});
  lp.AddConstraint({-1}, RelOp::kLe, -2);
  const LpResult res = lp.Solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.x[0], 2.0, 1e-9);
}

TEST(SimplexTest, RedundantConstraintsHandled) {
  LpProblem lp(2);
  lp.SetObjective({1, 1});
  lp.AddConstraint({1, 0}, RelOp::kLe, 1);
  lp.AddConstraint({1, 0}, RelOp::kLe, 1);  // Duplicate.
  lp.AddConstraint({2, 0}, RelOp::kLe, 2);  // Scaled duplicate.
  lp.AddConstraint({0, 1}, RelOp::kLe, 1);
  const LpResult res = lp.Solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_NEAR(res.objective, 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Klee-Minty-ish degenerate instance; must terminate and be optimal.
  LpProblem lp(3);
  lp.SetObjective({10, 1, 0});
  lp.AddConstraint({1, 0, 0}, RelOp::kLe, 1);
  lp.AddConstraint({20, 1, 0}, RelOp::kLe, 100);
  lp.AddConstraint({200, 20, 1}, RelOp::kLe, 10000);
  const LpResult res = lp.Solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  EXPECT_GT(res.objective, 0.0);
}

TEST(SimplexTest, WitnessLpShape) {
  // The exact shape used by the evaluator: max x s.t. <u,w> = 1,
  // <u,s> + x <= 1, u,x >= 0. w = (1, 0), s = (0.8, 0.6).
  LpProblem lp(3);  // u0, u1, x.
  lp.SetObjective({0, 0, 1});
  lp.AddConstraint({1.0, 0.0, 0}, RelOp::kEq, 1);    // u.w = 1.
  lp.AddConstraint({0.8, 0.6, 1}, RelOp::kLe, 1);    // u.s + x <= 1.
  const LpResult res = lp.Solve();
  ASSERT_EQ(res.status, LpStatus::kOptimal);
  // Best: u = (1, 0) -> x = 1 - 0.8 = 0.2.
  EXPECT_NEAR(res.objective, 0.2, 1e-9);
}

// Property test: on random feasible-by-construction LPs the simplex solution
// must (a) be feasible and (b) weakly beat a cloud of random feasible points.
TEST(SimplexTest, RandomLpsFeasibleAndNoWorseThanSampledPoints) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 + static_cast<int>(rng.UniformInt(3));  // 2..4 vars.
    const int m = 2 + static_cast<int>(rng.UniformInt(4));  // 2..5 rows.
    LpProblem lp(n);
    std::vector<double> c(static_cast<size_t>(n));
    for (auto& v : c) v = rng.Uniform(-1, 1);
    lp.SetObjective(c);
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    for (int i = 0; i < m; ++i) {
      std::vector<double> a(static_cast<size_t>(n));
      for (auto& v : a) v = rng.Uniform(0, 1);  // Nonneg rows keep it bounded.
      const double b = rng.Uniform(0.5, 2.0);
      lp.AddConstraint(a, RelOp::kLe, b);
      rows.push_back(a);
      rhs.push_back(b);
    }
    const LpResult res = lp.Solve();
    ASSERT_EQ(res.status, LpStatus::kOptimal) << "trial " << trial;
    // Feasibility.
    for (int i = 0; i < m; ++i) {
      double lhs = 0;
      for (int j = 0; j < n; ++j) lhs += rows[static_cast<size_t>(i)][static_cast<size_t>(j)] * res.x[static_cast<size_t>(j)];
      EXPECT_LE(lhs, rhs[static_cast<size_t>(i)] + 1e-7);
    }
    for (double v : res.x) EXPECT_GE(v, -1e-9);
    // Optimality vs sampled feasible points.
    for (int probe = 0; probe < 200; ++probe) {
      std::vector<double> x(static_cast<size_t>(n));
      for (auto& v : x) v = rng.Uniform(0, 2);
      bool feasible = true;
      for (int i = 0; i < m && feasible; ++i) {
        double lhs = 0;
        for (int j = 0; j < n; ++j) lhs += rows[static_cast<size_t>(i)][static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
        feasible = lhs <= rhs[static_cast<size_t>(i)];
      }
      if (!feasible) continue;
      double obj = 0;
      for (int j = 0; j < n; ++j) obj += c[static_cast<size_t>(j)] * x[static_cast<size_t>(j)];
      EXPECT_LE(obj, res.objective + 1e-6);
    }
  }
}

TEST(SimplexTest, StatusToString) {
  EXPECT_STREQ(LpStatusToString(LpStatus::kOptimal), "Optimal");
  EXPECT_STREQ(LpStatusToString(LpStatus::kInfeasible), "Infeasible");
  EXPECT_STREQ(LpStatusToString(LpStatus::kUnbounded), "Unbounded");
  EXPECT_STREQ(LpStatusToString(LpStatus::kIterationLimit), "IterationLimit");
}

}  // namespace
}  // namespace fairhms
